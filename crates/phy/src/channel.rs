//! Same-channel collision resolution with capture.

/// Power margin by which the strongest frame must exceed every interferer
/// to be captured, in dB. 6 dB is the figure used by FLoRa and most LoRa
/// collision studies.
pub const CAPTURE_MARGIN_DB: f64 = 6.0;

/// Resolves which of several time-overlapping transmissions (same channel,
/// same spreading factor) a receiver decodes.
///
/// `frames` holds `(tag, rssi_dbm)` pairs for every frame overlapping at
/// the receiver. A frame is decoded iff:
///
/// * its RSSI is at or above `sensitivity_dbm`, and
/// * either it is alone, or it exceeds **every** other overlapping frame
///   by at least `capture_margin_db` (the capture effect).
///
/// Returns the tag of the decoded frame, or `None` if the collision
/// destroys all frames.
///
/// # Example
///
/// ```
/// use mlora_phy::{resolve_collision, CAPTURE_MARGIN_DB};
///
/// // A strong frame captures over a weak interferer…
/// let got = resolve_collision(&[("a", -70.0), ("b", -90.0)], -123.0, CAPTURE_MARGIN_DB);
/// assert_eq!(got, Some("a"));
/// // …but similar powers destroy both.
/// let got = resolve_collision(&[("a", -80.0), ("b", -82.0)], -123.0, CAPTURE_MARGIN_DB);
/// assert_eq!(got, None);
/// ```
pub fn resolve_collision<T: Copy>(
    frames: &[(T, f64)],
    sensitivity_dbm: f64,
    capture_margin_db: f64,
) -> Option<T> {
    let (best_idx, &(tag, best_rssi)) = frames
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("RSSI values are finite"))?;
    if best_rssi < sensitivity_dbm {
        return None;
    }
    let captured = frames
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != best_idx)
        .all(|(_, &(_, rssi))| best_rssi - rssi >= capture_margin_db);
    captured.then_some(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SENS: f64 = -123.0;

    #[test]
    fn lone_frame_above_sensitivity_decodes() {
        assert_eq!(
            resolve_collision(&[(1, -100.0)], SENS, CAPTURE_MARGIN_DB),
            Some(1)
        );
    }

    #[test]
    fn lone_frame_below_sensitivity_lost() {
        assert_eq!(
            resolve_collision(&[(1, -130.0)], SENS, CAPTURE_MARGIN_DB),
            None
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(resolve_collision::<u32>(&[], SENS, CAPTURE_MARGIN_DB), None);
    }

    #[test]
    fn capture_requires_margin_over_all() {
        // Strongest beats one interferer by 10 dB but another by only 3 dB.
        let frames = [(1, -70.0), (2, -80.0), (3, -73.0)];
        assert_eq!(resolve_collision(&frames, SENS, CAPTURE_MARGIN_DB), None);
        // Remove the close interferer and capture succeeds.
        let frames = [(1, -70.0), (2, -80.0)];
        assert_eq!(resolve_collision(&frames, SENS, CAPTURE_MARGIN_DB), Some(1));
    }

    #[test]
    fn exact_margin_captures() {
        let frames = [(1, -70.0), (2, -76.0)];
        assert_eq!(resolve_collision(&frames, SENS, CAPTURE_MARGIN_DB), Some(1));
    }

    #[test]
    fn strongest_still_needs_sensitivity() {
        let frames = [(1, -125.0), (2, -140.0)];
        assert_eq!(resolve_collision(&frames, SENS, CAPTURE_MARGIN_DB), None);
    }

    #[test]
    fn zero_margin_degenerates_to_strongest_wins() {
        let frames = [(1, -80.0), (2, -80.5)];
        assert_eq!(resolve_collision(&frames, SENS, 0.0), Some(1));
    }
}
