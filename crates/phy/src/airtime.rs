//! LoRa time-on-air and duty-cycle arithmetic.

use mlora_simcore::SimDuration;

use crate::PhyParams;

/// The LoRa PHY payload maximum, bytes. [`time_on_air`] rejects anything
/// larger; MAC layers must bundle within this budget.
pub const LORA_MAX_PAYLOAD_BYTES: usize = 255;

/// Computes the time-on-air of a LoRa frame (Semtech AN1200.13).
///
/// `payload_bytes` is the PHY payload length (MAC header + application
/// payload + MIC). The result is rounded to the nearest millisecond, the
/// resolution of [`SimDuration`].
///
/// # Example
///
/// ```
/// use mlora_phy::{time_on_air, PhyParams};
///
/// // A 20-byte reading bundled twelve times plus headers ≈ 250 B payload:
/// let toa = time_on_air(250, &PhyParams::paper_default());
/// // SF7/125 kHz pushes ~5.5 kbit/s; 250 B needs ~0.36 s on air.
/// assert!(toa.as_secs_f64() > 0.3 && toa.as_secs_f64() < 0.45);
/// ```
///
/// # Panics
///
/// Panics if `payload_bytes` exceeds [`LORA_MAX_PAYLOAD_BYTES`].
pub fn time_on_air(payload_bytes: usize, params: &PhyParams) -> SimDuration {
    assert!(
        payload_bytes <= LORA_MAX_PAYLOAD_BYTES,
        "LoRa payload is at most 255 bytes"
    );
    let sf = params.sf.value() as i64;
    let t_sym = params.symbol_time_s();
    let de = i64::from(params.low_data_rate_optimize());
    let ih = i64::from(!params.explicit_header);
    let crc = i64::from(params.crc);
    let cr = params.coding_rate.cr() as i64;

    let numerator = 8 * payload_bytes as i64 - 4 * sf + 28 + 16 * crc - 20 * ih;
    let denominator = 4 * (sf - 2 * de);
    let n_payload =
        8 + (((numerator as f64) / (denominator as f64)).ceil() as i64 * (cr + 4)).max(0);

    let t_preamble = (params.preamble_symbols as f64 + 4.25) * t_sym;
    let t_payload = n_payload as f64 * t_sym;
    SimDuration::from_secs_f64(t_preamble + t_payload)
}

/// Precomputed [`time_on_air`] for every payload length under one
/// [`PhyParams`].
///
/// The airtime formula costs a float division, a `ceil` and several
/// conversions; the engine's hot path pays it on every transmission
/// start. There are only [`LORA_MAX_PAYLOAD_BYTES`]` + 1` possible
/// inputs, so this table computes each entry once with the exact same
/// formula — lookups are bit-identical to calling [`time_on_air`] by
/// construction — and a lookup is one bounds-checked load.
///
/// # Example
///
/// ```
/// use mlora_phy::{time_on_air, AirtimeTable, PhyParams};
///
/// let params = PhyParams::paper_default();
/// let table = AirtimeTable::new(&params);
/// assert_eq!(table.lookup(250), time_on_air(250, &params));
/// ```
#[derive(Debug, Clone)]
pub struct AirtimeTable {
    table: [SimDuration; LORA_MAX_PAYLOAD_BYTES + 1],
}

impl AirtimeTable {
    /// Tabulates [`time_on_air`] for payloads `0..=255` under `params`.
    pub fn new(params: &PhyParams) -> Self {
        let mut table = [SimDuration::ZERO; LORA_MAX_PAYLOAD_BYTES + 1];
        for (bytes, slot) in table.iter_mut().enumerate() {
            *slot = time_on_air(bytes, params);
        }
        AirtimeTable { table }
    }

    /// The time-on-air of a `payload_bytes`-byte frame.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` exceeds [`LORA_MAX_PAYLOAD_BYTES`],
    /// like [`time_on_air`].
    #[inline]
    pub fn lookup(&self, payload_bytes: usize) -> SimDuration {
        assert!(
            payload_bytes <= LORA_MAX_PAYLOAD_BYTES,
            "LoRa payload is at most 255 bytes"
        );
        self.table[payload_bytes]
    }

    /// The worst-case airtime under these parameters (a full 255-byte
    /// payload) — what flight-retention windows are sized from.
    pub fn max(&self) -> SimDuration {
        self.table[LORA_MAX_PAYLOAD_BYTES]
    }
}

/// [`AirtimeTable`]s for every [`SpreadingFactor`] at fixed
/// bandwidth/coding parameters, for schemes that adapt SF per link.
///
/// [`SpreadingFactor`]: crate::SpreadingFactor
#[derive(Debug, Clone)]
pub struct SfAirtimeTables {
    tables: [AirtimeTable; crate::SpreadingFactor::ALL.len()],
}

impl SfAirtimeTables {
    /// Tabulates airtime for every SF, holding `base`'s bandwidth,
    /// coding rate, preamble and header settings fixed.
    pub fn new(base: &PhyParams) -> Self {
        SfAirtimeTables {
            tables: crate::SpreadingFactor::ALL
                .map(|sf| AirtimeTable::new(&PhyParams { sf, ..*base })),
        }
    }

    /// The table for one spreading factor.
    #[inline]
    pub fn for_sf(&self, sf: crate::SpreadingFactor) -> &AirtimeTable {
        let at = crate::SpreadingFactor::ALL
            .iter()
            .position(|&s| s == sf)
            .expect("every SF is tabulated");
        &self.tables[at]
    }
}

/// The mandatory silence after a transmission under a duty-cycle cap.
///
/// A `duty_cycle` of 0.01 (EU868 general channels) after an airtime `toa`
/// forbids transmitting for `toa × (1/duty_cycle − 1)`.
///
/// # Example
///
/// ```
/// use mlora_phy::duty_cycle_wait;
/// use mlora_simcore::SimDuration;
///
/// let toa = SimDuration::from_millis(400);
/// assert_eq!(duty_cycle_wait(toa, 0.01), SimDuration::from_millis(39_600));
/// ```
///
/// # Panics
///
/// Panics if `duty_cycle` is not in `(0, 1]`.
pub fn duty_cycle_wait(toa: SimDuration, duty_cycle: f64) -> SimDuration {
    assert!(
        duty_cycle > 0.0 && duty_cycle <= 1.0,
        "duty cycle must be in (0, 1], got {duty_cycle}"
    );
    toa.mul_f64(1.0 / duty_cycle - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, CodingRate, SpreadingFactor};

    #[test]
    fn known_airtime_sf7_small_payload() {
        // Cross-checked with the Semtech LoRa calculator:
        // SF7, 125 kHz, CR 4/5, preamble 8, CRC on, explicit header, 20 B
        // payload -> 12.25 preamble + 43 payload symbols = 56.58 ms.
        let toa = time_on_air(20, &PhyParams::paper_default());
        let ms = toa.as_millis() as f64;
        assert!((ms - 56.6).abs() <= 1.0, "got {ms} ms");
    }

    #[test]
    fn known_airtime_sf12() {
        // SF12 is 2^5 slower per symbol; a 20 B payload lands near 1.2 s.
        let params = PhyParams {
            sf: SpreadingFactor::Sf12,
            ..PhyParams::paper_default()
        };
        let toa = time_on_air(20, &params);
        assert!(
            toa.as_secs_f64() > 1.0 && toa.as_secs_f64() < 1.5,
            "got {}",
            toa
        );
    }

    #[test]
    fn airtime_monotonic_in_payload() {
        let p = PhyParams::paper_default();
        let mut last = SimDuration::ZERO;
        for bytes in (0..=255).step_by(5) {
            let toa = time_on_air(bytes, &p);
            assert!(toa >= last, "airtime not monotonic at {bytes}");
            last = toa;
        }
    }

    #[test]
    fn airtime_monotonic_in_sf() {
        let mut last = SimDuration::ZERO;
        for sf in SpreadingFactor::ALL {
            let params = PhyParams {
                sf,
                ..PhyParams::paper_default()
            };
            let toa = time_on_air(50, &params);
            assert!(toa > last, "airtime not increasing at {sf}");
            last = toa;
        }
    }

    #[test]
    fn coding_rate_increases_airtime() {
        let base = PhyParams::paper_default();
        let robust = PhyParams {
            coding_rate: CodingRate::Cr4of8,
            ..base
        };
        assert!(time_on_air(100, &robust) > time_on_air(100, &base));
    }

    #[test]
    fn wider_bandwidth_reduces_airtime() {
        let base = PhyParams::paper_default();
        let wide = PhyParams {
            bandwidth: Bandwidth::Khz500,
            ..base
        };
        assert!(time_on_air(100, &wide) < time_on_air(100, &base));
    }

    #[test]
    #[should_panic(expected = "at most 255")]
    fn oversized_payload_rejected() {
        let _ = time_on_air(256, &PhyParams::paper_default());
    }

    #[test]
    fn table_matches_formula_for_every_payload() {
        let params = PhyParams::paper_default();
        let table = AirtimeTable::new(&params);
        for bytes in 0..=LORA_MAX_PAYLOAD_BYTES {
            assert_eq!(table.lookup(bytes), time_on_air(bytes, &params));
        }
        assert_eq!(table.max(), time_on_air(LORA_MAX_PAYLOAD_BYTES, &params));
    }

    #[test]
    #[should_panic(expected = "at most 255")]
    fn table_rejects_oversized_payload() {
        AirtimeTable::new(&PhyParams::paper_default()).lookup(256);
    }

    #[test]
    fn sf_tables_match_per_sf_formula() {
        let base = PhyParams::paper_default();
        let tables = SfAirtimeTables::new(&base);
        for sf in SpreadingFactor::ALL {
            let params = PhyParams { sf, ..base };
            assert_eq!(tables.for_sf(sf).lookup(50), time_on_air(50, &params));
        }
    }

    #[test]
    fn duty_cycle_one_percent() {
        let toa = SimDuration::from_millis(100);
        assert_eq!(duty_cycle_wait(toa, 0.01), SimDuration::from_millis(9_900));
        assert_eq!(duty_cycle_wait(toa, 1.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_rejected() {
        let _ = duty_cycle_wait(SimDuration::from_millis(1), 0.0);
    }
}
