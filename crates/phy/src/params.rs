//! LoRa modulation parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

/// LoRa spreading factor (SF7–SF12).
///
/// Higher spreading factors trade data rate for range and sensitivity.
/// The paper fixes SF7 for all devices (§VII.A.5): adaptive data rate is
/// ineffective under mobility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpreadingFactor {
    /// SF7 — fastest, shortest range.
    Sf7,
    /// SF8.
    Sf8,
    /// SF9.
    Sf9,
    /// SF10.
    Sf10,
    /// SF11.
    Sf11,
    /// SF12 — slowest, longest range.
    Sf12,
}

impl SpreadingFactor {
    /// All spreading factors in ascending order.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The numeric spreading factor (7–12).
    pub const fn value(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Receiver sensitivity in dBm at 125 kHz bandwidth (SX1276 datasheet).
    pub const fn sensitivity_dbm(self) -> f64 {
        match self {
            SpreadingFactor::Sf7 => -123.0,
            SpreadingFactor::Sf8 => -126.0,
            SpreadingFactor::Sf9 => -129.0,
            SpreadingFactor::Sf10 => -132.0,
            SpreadingFactor::Sf11 => -134.5,
            SpreadingFactor::Sf12 => -137.0,
        }
    }
}

impl fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", self.value())
    }
}

/// LoRa channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bandwidth {
    /// 125 kHz — the EU868 default.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// Bandwidth in hertz.
    pub const fn hz(self) -> f64 {
        match self {
            Bandwidth::Khz125 => 125_000.0,
            Bandwidth::Khz250 => 250_000.0,
            Bandwidth::Khz500 => 500_000.0,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kHz", (self.hz() / 1000.0) as u32)
    }
}

/// LoRa forward error correction coding rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingRate {
    /// 4/5 — the LoRaWAN default.
    Cr4of5,
    /// 4/6.
    Cr4of6,
    /// 4/7.
    Cr4of7,
    /// 4/8.
    Cr4of8,
}

impl CodingRate {
    /// The `CR` term of the airtime formula (1 for 4/5 … 4 for 4/8).
    pub const fn cr(self) -> u32 {
        match self {
            CodingRate::Cr4of5 => 1,
            CodingRate::Cr4of6 => 2,
            CodingRate::Cr4of7 => 3,
            CodingRate::Cr4of8 => 4,
        }
    }
}

impl fmt::Display for CodingRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "4/{}", self.cr() + 4)
    }
}

/// Full physical-layer configuration of a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyParams {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Coding rate.
    pub coding_rate: CodingRate,
    /// Preamble length in symbols (LoRaWAN uses 8).
    pub preamble_symbols: u32,
    /// Whether the explicit PHY header is present (LoRaWAN uplinks: yes).
    pub explicit_header: bool,
    /// Whether the payload CRC is on (LoRaWAN uplinks: yes).
    pub crc: bool,
    /// Transmit power in dBm (EU868 ERP limit: +14 dBm).
    pub tx_power_dbm: f64,
}

impl PhyParams {
    /// The configuration used throughout the paper's evaluation:
    /// SF7, 125 kHz, CR 4/5, 8-symbol preamble, explicit header, CRC on,
    /// +14 dBm.
    pub const fn paper_default() -> Self {
        PhyParams {
            sf: SpreadingFactor::Sf7,
            bandwidth: Bandwidth::Khz125,
            coding_rate: CodingRate::Cr4of5,
            preamble_symbols: 8,
            explicit_header: true,
            crc: true,
            tx_power_dbm: 14.0,
        }
    }

    /// Duration of one LoRa symbol in seconds: `2^SF / BW`.
    pub fn symbol_time_s(&self) -> f64 {
        (1u64 << self.sf.value()) as f64 / self.bandwidth.hz()
    }

    /// Whether low-data-rate optimisation is mandated (SF11/SF12 at
    /// 125 kHz per the LoRaWAN regional parameters).
    pub fn low_data_rate_optimize(&self) -> bool {
        self.sf.value() >= 11 && matches!(self.bandwidth, Bandwidth::Khz125)
    }

    /// Receiver sensitivity for this configuration, in dBm.
    pub fn sensitivity_dbm(&self) -> f64 {
        // Bandwidth scaling: each doubling of BW costs ~3 dB of sensitivity.
        let bw_penalty = match self.bandwidth {
            Bandwidth::Khz125 => 0.0,
            Bandwidth::Khz250 => 3.0,
            Bandwidth::Khz500 => 6.0,
        };
        self.sf.sensitivity_dbm() + bw_penalty
    }
}

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_values_and_order() {
        assert_eq!(SpreadingFactor::Sf7.value(), 7);
        assert_eq!(SpreadingFactor::Sf12.value(), 12);
        assert!(SpreadingFactor::Sf7 < SpreadingFactor::Sf12);
        assert_eq!(SpreadingFactor::ALL.len(), 6);
    }

    #[test]
    fn sensitivity_monotonic_in_sf() {
        for w in SpreadingFactor::ALL.windows(2) {
            assert!(w[0].sensitivity_dbm() > w[1].sensitivity_dbm());
        }
    }

    #[test]
    fn symbol_time_sf7_125khz() {
        let p = PhyParams::paper_default();
        // 2^7 / 125000 = 1.024 ms
        assert!((p.symbol_time_s() - 0.001024).abs() < 1e-9);
    }

    #[test]
    fn ldro_only_high_sf_narrow_bw() {
        let mut p = PhyParams::paper_default();
        assert!(!p.low_data_rate_optimize());
        p.sf = SpreadingFactor::Sf11;
        assert!(p.low_data_rate_optimize());
        p.bandwidth = Bandwidth::Khz250;
        assert!(!p.low_data_rate_optimize());
    }

    #[test]
    fn display_formats() {
        assert_eq!(SpreadingFactor::Sf7.to_string(), "SF7");
        assert_eq!(Bandwidth::Khz125.to_string(), "125kHz");
        assert_eq!(CodingRate::Cr4of5.to_string(), "4/5");
    }

    #[test]
    fn bandwidth_sensitivity_penalty() {
        let mut p = PhyParams::paper_default();
        let base = p.sensitivity_dbm();
        p.bandwidth = Bandwidth::Khz500;
        assert_eq!(p.sensitivity_dbm(), base + 6.0);
    }
}
