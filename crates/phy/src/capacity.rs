//! RSSI-to-capacity mapping (paper Eq. 5).

use serde::{Deserialize, Serialize};

/// The piecewise-linear RSSI→capacity mapping of Eq. 5:
///
/// ```text
///           ⎧ c_max · (γ − γ_min)/(γ_max − γ_min)   γ_min ≤ γ ≤ γ_max
/// c(γ)  =   ⎨ c_max                                  γ > γ_max
///           ⎩ 0                                      γ < γ_min
/// ```
///
/// The paper keeps this linear "as a proof of concept" and notes users may
/// substitute e.g. a hyperbolic map; [`CapacityModel::capacity_bps`] is the
/// single place to swap that in.
///
/// # Example
///
/// ```
/// use mlora_phy::CapacityModel;
///
/// let m = CapacityModel::paper_default();
/// assert_eq!(m.capacity_bps(-200.0), 0.0);             // below γ_min
/// assert_eq!(m.capacity_bps(0.0), m.max_capacity_bps()); // above γ_max
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    gamma_min_dbm: f64,
    gamma_max_dbm: f64,
    c_max_bps: f64,
}

impl CapacityModel {
    /// Creates a capacity model.
    ///
    /// # Panics
    ///
    /// Panics if `gamma_min_dbm >= gamma_max_dbm` or `c_max_bps <= 0`.
    pub fn new(gamma_min_dbm: f64, gamma_max_dbm: f64, c_max_bps: f64) -> Self {
        assert!(
            gamma_min_dbm < gamma_max_dbm,
            "need γ_min < γ_max, got [{gamma_min_dbm}, {gamma_max_dbm}]"
        );
        assert!(c_max_bps > 0.0, "c_max must be positive, got {c_max_bps}");
        CapacityModel {
            gamma_min_dbm,
            gamma_max_dbm,
            c_max_bps,
        }
    }

    /// Defaults for the paper's SF7/125 kHz single-channel setting:
    /// `γ_min` at the SF7 sensitivity floor (−123 dBm), `γ_max` at
    /// −80 dBm (strong urban signal), and `c_max` = 5 469 bit/s, the SF7
    /// LoRa PHY bit rate `SF·BW/2^SF·CR`.
    pub fn paper_default() -> Self {
        CapacityModel::new(-123.0, -80.0, 5_469.0)
    }

    /// The RSSI below which capacity is zero, in dBm.
    pub fn gamma_min_dbm(&self) -> f64 {
        self.gamma_min_dbm
    }

    /// The RSSI above which capacity saturates, in dBm.
    pub fn gamma_max_dbm(&self) -> f64 {
        self.gamma_max_dbm
    }

    /// The saturation capacity, in bits per second.
    pub fn max_capacity_bps(&self) -> f64 {
        self.c_max_bps
    }

    /// Link capacity for a received signal strength, in bits per second
    /// (Eq. 5).
    pub fn capacity_bps(&self, rssi_dbm: f64) -> f64 {
        if rssi_dbm < self.gamma_min_dbm {
            0.0
        } else if rssi_dbm > self.gamma_max_dbm {
            self.c_max_bps
        } else {
            self.c_max_bps * (rssi_dbm - self.gamma_min_dbm)
                / (self.gamma_max_dbm - self.gamma_min_dbm)
        }
    }
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_regions() {
        let m = CapacityModel::new(-120.0, -80.0, 1_000.0);
        assert_eq!(m.capacity_bps(-130.0), 0.0);
        assert_eq!(m.capacity_bps(-120.0), 0.0);
        assert_eq!(m.capacity_bps(-100.0), 500.0);
        assert_eq!(m.capacity_bps(-80.0), 1_000.0);
        assert_eq!(m.capacity_bps(-10.0), 1_000.0);
    }

    #[test]
    fn monotonic_nondecreasing() {
        let m = CapacityModel::paper_default();
        let mut last = -1.0;
        let mut rssi = -150.0;
        while rssi <= -40.0 {
            let c = m.capacity_bps(rssi);
            assert!(c >= last, "capacity decreased at {rssi}");
            last = c;
            rssi += 0.5;
        }
    }

    #[test]
    fn bounded_by_c_max() {
        let m = CapacityModel::paper_default();
        for rssi in [-140.0, -123.0, -100.0, -80.0, 0.0] {
            let c = m.capacity_bps(rssi);
            assert!((0.0..=m.max_capacity_bps()).contains(&c));
        }
    }

    #[test]
    fn boundary_rssi_values_are_exact() {
        let m = CapacityModel::paper_default();
        // Exactly at γ_min the linear branch evaluates to exactly zero…
        assert_eq!(m.capacity_bps(m.gamma_min_dbm()), 0.0);
        // …and exactly at γ_max to exactly c_max (no rounding slop at
        // either end of the piecewise map).
        assert_eq!(m.capacity_bps(m.gamma_max_dbm()), m.max_capacity_bps());
    }

    #[test]
    fn extreme_rssi_saturates_cleanly() {
        let m = CapacityModel::paper_default();
        // A dead channel (no audible devices at all) and an arbitrarily
        // strong one both stay finite and bounded.
        assert_eq!(m.capacity_bps(f64::NEG_INFINITY), 0.0);
        assert_eq!(m.capacity_bps(f64::INFINITY), m.max_capacity_bps());
        assert_eq!(m.capacity_bps(f64::MIN), 0.0);
        assert_eq!(m.capacity_bps(f64::MAX), m.max_capacity_bps());
    }

    #[test]
    fn degenerate_narrow_interval_still_interpolates() {
        // A model whose linear region is a sliver: values inside stay
        // within [0, c_max] and the midpoint lands at half capacity.
        let m = CapacityModel::new(-100.0, -100.0 + 1e-9, 1_000.0);
        let mid = m.capacity_bps(-100.0 + 5e-10);
        // The sliver-wide division loses a few ulps; only the order of
        // magnitude is meaningful here.
        assert!((mid - 500.0).abs() < 1.0, "midpoint {mid}");
        assert_eq!(m.capacity_bps(-100.0), 0.0);
        assert_eq!(m.capacity_bps(-100.0 + 1e-9), 1_000.0);
    }

    #[test]
    #[should_panic(expected = "γ_min < γ_max")]
    fn inverted_thresholds_rejected() {
        let _ = CapacityModel::new(-80.0, -120.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "c_max must be positive")]
    fn zero_capacity_rejected() {
        let _ = CapacityModel::new(-120.0, -80.0, 0.0);
    }
}
