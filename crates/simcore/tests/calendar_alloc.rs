//! Allocation accounting for the calendar queue hot path: steady-state
//! schedule/pop churn must not touch the heap.
//!
//! Uses a counting wrapper around the system allocator; the counter is a
//! process-wide total, so each assertion brackets exactly the code under
//! test and nothing else runs concurrently (integration tests in this
//! binary run on one thread: there is only one test).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mlora_simcore::{CalendarQueue, SimTime};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_schedule_and_pop_do_not_allocate() {
    // 64 buckets at the initial 1 ms width; occupancy stays at 32 so the
    // wheel never grows, and each round advances time by exactly one
    // wheel revolution so the same buckets fill cycle over cycle.
    let mut q: CalendarQueue<u64> = CalendarQueue::with_capacity(63);
    let cycle = |q: &mut CalendarQueue<u64>, base_round: u64| {
        for round in base_round..base_round + 50 {
            for i in 0..32u64 {
                q.schedule(SimTime::from_millis(round * 64 + 2 * i), i);
            }
            for _ in 0..32 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        // A sparse far-future event exercises the full-rotation jump.
        q.schedule(SimTime::from_millis((base_round + 51) * 64), 0);
        q.schedule(SimTime::from_millis(base_round * 64 + 3), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 0);
    };

    // Warm-up settles every bucket at the cycle's maximum capacity.
    cycle(&mut q, 0);

    // Steady state: the identical churn pattern must be allocation-free.
    let before = allocations();
    cycle(&mut q, 100);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "calendar queue hot path allocated {} times in steady state",
        after - before
    );
}
