//! Deterministic discrete-event simulation core for the MLoRa stack.
//!
//! This crate provides the building blocks every other crate in the
//! workspace relies on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-millisecond simulation time
//!   newtypes that cannot be confused with wall-clock time.
//! * [`EventQueue`] — a monotonic, FIFO-tie-broken priority queue of
//!   timestamped events; the heart of the discrete-event loop.
//! * [`SimRng`] — a seeded, fork-able random number generator so that a
//!   single `u64` seed reproduces an entire simulation run bit-for-bit.
//! * [`Slab`] / [`DenseMap`] — dense, index-addressed storage for hot
//!   per-entity state (generational arena and flat id-keyed map), so the
//!   inner event loop never hashes.
//! * [`stats`] — streaming statistics (Welford accumulator, histograms,
//!   time-bucketed series) used by the metric collectors.
//!
//! # Example
//!
//! ```
//! use mlora_simcore::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Hello, World }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2), Ev::World);
//! q.schedule(SimTime::from_secs(1), Ev::Hello);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_secs(1));
//! assert_eq!(ev, Ev::Hello);
//! ```

#![deny(missing_docs)]

mod event;
mod id;
mod rng;
mod slab;
pub mod stats;
mod time;

pub use event::{AnyEventQueue, CalendarQueue, EventQueue, ParseQueueKindError, QueueKind};
pub use id::{GatewayId, MessageId, NodeId};
pub use rng::SimRng;
pub use slab::{DenseKey, DenseMap, Slab, SlabKey};
pub use time::{SimDuration, SimTime};
