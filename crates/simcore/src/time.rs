//! Simulation time newtypes.
//!
//! All simulation timestamps are integer milliseconds since simulation
//! start. Integer time keeps event ordering exact (no floating-point
//! drift) while millisecond resolution is ~350× finer than the shortest
//! LoRa SF7 airtime we model.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulation time, in milliseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// two `SimTime`s yields a [`SimDuration`].
///
/// # Example
///
/// ```
/// use mlora_simcore::{SimDuration, SimTime};
///
/// let t0 = SimTime::from_secs(10);
/// let t1 = t0 + SimDuration::from_millis(500);
/// assert_eq!(t1 - t0, SimDuration::from_millis(500));
/// assert_eq!(t1.as_secs_f64(), 10.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
///
/// Durations are non-negative; saturating arithmetic is used where an
/// operation could underflow.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Creates a timestamp from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whole seconds since simulation start (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Time elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Duration in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, rounding to the nearest millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "duration underflow: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0;
        let h = total_ms / 3_600_000;
        let m = (total_ms % 3_600_000) / 60_000;
        let s = (total_ms % 60_000) / 1000;
        let ms = total_ms % 1000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_units() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(2.0005).as_millis(), 2001); // rounds
        assert_eq!(SimTime::from_secs(7).as_secs(), 7);
    }

    #[test]
    fn duration_roundtrip_units() {
        assert_eq!(SimDuration::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs(10) * 3, SimDuration::from_secs(30));
        assert_eq!(
            SimDuration::from_secs(10) / 4,
            SimDuration::from_millis(2500)
        );
    }

    #[test]
    fn saturating_since_future_is_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_millis(100).mul_f64(0.333);
        assert_eq!(d.as_millis(), 33);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_millis(3_725_250);
        assert_eq!(t.to_string(), "01:02:05.250");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }
}
