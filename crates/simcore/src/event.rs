//! Timestamped event queue with deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order. Events scheduled for the same
/// instant pop in insertion order (FIFO), which keeps simulation runs
/// deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use mlora_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 1, 5] {
            q.schedule(SimTime::from_secs(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
