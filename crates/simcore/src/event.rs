//! Timestamped event queues with deterministic FIFO tie-breaking.
//!
//! Two interchangeable implementations share one contract — events pop
//! in packed `(time, sequence)` order, so runs are bit-identical under
//! either:
//!
//! * [`EventQueue`] — a binary min-heap: `O(log n)` per operation,
//!   branch-predictable, the long-standing default.
//! * [`CalendarQueue`] — a calendar queue (time wheel): amortized `O(1)`
//!   schedule/pop when the bucket width tracks the mean event spacing.
//!
//! [`AnyEventQueue`] dispatches between them at runtime from a
//! [`QueueKind`], and both export their pending events in a common
//! checkpoint shape so snapshots taken under one kind resume under the
//! other.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order. Events scheduled for the same
/// instant pop in insertion order (FIFO), which keeps simulation runs
/// deterministic regardless of heap internals.
///
/// Internally this is a hand-rolled binary min-heap over a flat `Vec`
/// whose priority is a single packed `(time, sequence)` `u128`: one
/// integer comparison per sift step instead of a two-field lexicographic
/// compare, and pops reuse the buffer's capacity, so a queue at its
/// steady-state size allocates nothing.
///
/// # Example
///
/// ```
/// use mlora_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Min-heap of `(packed priority, event)`; `heap[0]` is the earliest.
    heap: Vec<(u128, E)>,
    seq: u64,
}

/// Packs `(time, seq)` into one ordered priority word: the millisecond
/// timestamp in the high 64 bits, the insertion sequence in the low 64,
/// so `u128` ordering is exactly lexicographic `(time, seq)` ordering.
fn pack(time: SimTime, seq: u64) -> u128 {
    (u128::from(time.as_millis()) << 64) | u128::from(seq)
}

fn unpack_time(key: u128) -> SimTime {
    SimTime::from_millis((key >> 64) as u64)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let key = pack(time, self.seq);
        self.seq += 1;
        self.heap.push((key, event));
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let (key, event) = self.heap.pop().expect("len checked above");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((unpack_time(key), event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&(key, _)| unpack_time(key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The queue's raw state: the backing heap (packed `(time, seq)`
    /// priority words paired with events, in heap layout order) and the
    /// next insertion sequence number. Checkpoint counterpart of
    /// [`EventQueue::from_raw_parts`].
    pub fn raw_parts(&self) -> (&[(u128, E)], u64) {
        (&self.heap, self.seq)
    }

    /// Rebuilds a queue from state captured by [`EventQueue::raw_parts`].
    ///
    /// `heap` must be a valid binary min-heap over the packed priority
    /// words (any slice returned by [`EventQueue::raw_parts`] is); the
    /// layout is restored verbatim so subsequent pops replay in exactly
    /// the original order.
    pub fn from_raw_parts(heap: Vec<(u128, E)>, seq: u64) -> Self {
        debug_assert!((1..heap.len()).all(|i| heap[(i - 1) / 2].0 <= heap[i].0));
        EventQueue { heap, seq }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smaller = if right < n && self.heap[right].0 < self.heap[left].0 {
                right
            } else {
                left
            };
            if self.heap[i].0 <= self.heap[smaller].0 {
                break;
            }
            self.heap.swap(i, smaller);
            i = smaller;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Which [`AnyEventQueue`] implementation a simulation runs on.
///
/// A host-execution knob, not scenario content: both kinds pop the same
/// packed `(time, seq)` sequence, so any choice produces bit-identical
/// results and scenario/snapshot files neither carry nor require it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QueueKind {
    /// The binary min-heap [`EventQueue`]: `O(log n)` per operation.
    #[default]
    BinaryHeap,
    /// The [`CalendarQueue`] time wheel: amortized `O(1)` per operation
    /// once the bucket width has adapted to the mean event spacing.
    Calendar,
}

impl QueueKind {
    /// Every selectable kind, in declaration order (for CLI help text
    /// and exhaustive sweeps).
    pub const ALL: [QueueKind; 2] = [QueueKind::BinaryHeap, QueueKind::Calendar];

    /// The canonical CLI/config spelling (`"heap"` / `"calendar"`).
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "heap",
            QueueKind::Calendar => "calendar",
        }
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`QueueKind`] from a string (see its [`FromStr`]
/// impl for the accepted spellings).
///
/// [`FromStr`]: std::str::FromStr
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueueKindError {
    input: String,
}

impl std::fmt::Display for ParseQueueKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown queue kind `{}` (expected `heap` or `calendar`)",
            self.input
        )
    }
}

impl std::error::Error for ParseQueueKindError {}

impl std::str::FromStr for QueueKind {
    type Err = ParseQueueKindError;

    /// Accepts `heap` / `binary-heap` / `binary_heap` and `calendar`
    /// (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binary_heap" | "binaryheap" => Ok(QueueKind::BinaryHeap),
            "calendar" => Ok(QueueKind::Calendar),
            _ => Err(ParseQueueKindError {
                input: s.to_string(),
            }),
        }
    }
}

/// The bucket-day of a packed key under a given bucket width
/// (`1 << shift` milliseconds).
fn day_of(key: u128, shift: u32) -> u64 {
    ((key >> 64) as u64) >> shift
}

/// A calendar queue (time wheel) with the same ordering contract as
/// [`EventQueue`].
///
/// Time is divided into fixed-width *days* of `1 << day_shift`
/// milliseconds; day `d` files its events under bucket `d mod n` (with
/// `n` a power of two). Each bucket is kept sorted by packed key in
/// descending order, so the earliest pending event of the day under the
/// cursor is a `Vec::pop` from the bucket's tail. Popping advances the
/// cursor day by day; after one full empty rotation it jumps straight
/// to the globally earliest bucket head, so sparse stretches cost one
/// wheel scan instead of one step per empty day.
///
/// The wheel doubles whenever occupancy exceeds one event per bucket,
/// re-tuning its bucket width as it redistributes: once enough pops have
/// been observed, the width snaps to the *median observed pop-to-pop
/// gap* (a fixed-size log₂ histogram updated with pure arithmetic on
/// every pop — the median tracks the typical event spacing without
/// being dragged by the rare day-scale gap the mean is hostage to);
/// until then it falls back to the mean spacing of the pending events.
/// [`CalendarQueue::with_fixed_day_width_ms`] is the escape hatch that
/// pins the width and never re-tunes. Width only ever changes inside a
/// redistribution, so the `(time, seq)` pop order is identical under
/// any width — tuned, untuned or fixed — which
/// `tests/queue_properties.rs` pins by proptest. The wheel never
/// shrinks: buckets keep their capacity, so a queue at its steady-state
/// size allocates nothing — the property `calendar_queue_alloc` pins
/// with a counting allocator.
///
/// # Example
///
/// ```
/// use mlora_simcore::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    /// `buckets[d mod n]` holds day `d`'s events, sorted by packed key
    /// in *descending* order (earliest at the tail).
    buckets: Vec<Vec<(u128, E)>>,
    /// Bucket width is `1 << day_shift` milliseconds.
    day_shift: u32,
    /// `Some(shift)` pins the bucket width to `1 << shift` ms forever
    /// (the [`CalendarQueue::with_fixed_day_width_ms`] escape hatch);
    /// `None` lets [`CalendarQueue::grow`] re-tune.
    fixed_shift: Option<u32>,
    /// Log₂ histogram of observed pop-to-pop gaps: `gap_hist[b]` counts
    /// gaps with `b` significant bits (`b == 0` is a same-millisecond
    /// pop). Tuning state only — never checkpointed; a restored queue
    /// re-learns its spacing, which cannot change pop order.
    gap_hist: [u32; GAP_BUCKETS],
    /// Total samples in `gap_hist` (saturating).
    gap_samples: u32,
    /// Timestamp (ms) of the most recent pop, for gap measurement.
    last_pop_ms: Option<u64>,
    /// The day holding `head` (meaningless while the queue is empty).
    day: u64,
    /// Cached earliest pending key, so `peek_time` is `O(1)`.
    head: Option<u128>,
    len: usize,
    seq: u64,
}

/// Log₂ gap-histogram buckets: gaps of up to `2^(GAP_BUCKETS-2)` ms
/// (≈ 17 years) resolve exactly; anything longer lands in the last
/// bucket.
const GAP_BUCKETS: usize = 40;

/// How many pop-to-pop gaps must be observed before the auto-tuner
/// trusts the histogram median over the pending-span mean.
const GAP_MIN_SAMPLES: u32 = 64;

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: Vec::new(),
            day_shift: 0,
            fixed_shift: None,
            gap_hist: [0; GAP_BUCKETS],
            gap_samples: 0,
            last_pop_ms: None,
            day: 0,
            head: None,
            len: 0,
            seq: 0,
        }
    }

    /// Creates an empty queue whose bucket width is pinned to
    /// `width_ms` milliseconds, rounded up to a power of two — the
    /// escape hatch from day-width auto-tuning. The wheel still doubles
    /// under load, but redistributions keep this width forever.
    pub fn with_fixed_day_width_ms(width_ms: u64) -> Self {
        let shift = width_ms.max(1).next_power_of_two().trailing_zeros();
        let mut q = CalendarQueue::new();
        q.day_shift = shift;
        q.fixed_shift = Some(shift);
        q
    }

    /// Creates an empty queue wheel-sized for about `capacity` pending
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = CalendarQueue::new();
        q.buckets
            .resize_with(capacity.next_power_of_two().max(16), Vec::new);
        q
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let key = pack(time, self.seq);
        self.seq += 1;
        if self.len == self.buckets.len() {
            self.grow();
        }
        self.insert_key(key, event);
    }

    /// Files an already-packed key without growing; the caller ensures
    /// `len < buckets.len()`.
    fn insert_key(&mut self, key: u128, event: E) {
        let d = day_of(key, self.day_shift);
        let mask = (self.buckets.len() - 1) as u64;
        let bucket = &mut self.buckets[(d & mask) as usize];
        let at = bucket.partition_point(|&(k, _)| k > key);
        bucket.insert(at, (key, event));
        self.len += 1;
        if self.head.is_none_or(|h| key < h) {
            self.head = Some(key);
            self.day = d;
        }
    }

    /// Doubles the wheel and re-tunes the bucket width, redistributing
    /// every pending event. Width selection, in priority order: a
    /// pinned [`CalendarQueue::with_fixed_day_width_ms`] width; the
    /// median of the observed pop-to-pop gap histogram (once
    /// [`GAP_MIN_SAMPLES`] gaps have been seen); else the mean spacing
    /// of the pending events — the cold-start rule.
    fn grow(&mut self) {
        let mut all: Vec<(u128, E)> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        self.day_shift = if let Some(shift) = self.fixed_shift {
            shift
        } else if let Some(shift) = self.tuned_shift() {
            shift
        } else {
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for &(key, _) in &all {
                let t = (key >> 64) as u64;
                lo = lo.min(t);
                hi = hi.max(t);
            }
            let width = if all.is_empty() {
                1
            } else {
                ((hi - lo) / all.len() as u64).max(1).next_power_of_two()
            };
            width.trailing_zeros()
        };
        let target = (self.buckets.len() * 2).max(16);
        self.buckets.resize_with(target, Vec::new);
        self.len = 0;
        self.head = None;
        for (key, event) in all {
            self.insert_key(key, event);
        }
    }

    /// The auto-tuned day shift: the histogram bucket holding the
    /// median observed pop-to-pop gap (so the typical day spans about
    /// one inter-event interval), or `None` until enough gaps have been
    /// observed to trust it.
    fn tuned_shift(&self) -> Option<u32> {
        if self.gap_samples < GAP_MIN_SAMPLES {
            return None;
        }
        let half = self.gap_samples.div_ceil(2);
        let mut seen = 0u32;
        for (b, &count) in self.gap_hist.iter().enumerate() {
            seen = seen.saturating_add(count);
            if seen >= half {
                // Bucket `b` holds gaps of `b` significant bits, i.e.
                // `2^(b-1) <= gap < 2^b`; its floor is the widest
                // power-of-two day not exceeding the median gap.
                return Some(b.saturating_sub(1) as u32);
            }
        }
        None
    }

    /// Folds one observed pop timestamp into the gap histogram. Pure
    /// arithmetic on fixed-size state: no allocation on any pop.
    fn observe_pop(&mut self, t_ms: u64) {
        if let Some(prev) = self.last_pop_ms {
            let gap = t_ms.saturating_sub(prev);
            let bits = (u64::BITS - gap.leading_zeros()) as usize;
            self.gap_hist[bits.min(GAP_BUCKETS - 1)] =
                self.gap_hist[bits.min(GAP_BUCKETS - 1)].saturating_add(1);
            self.gap_samples = self.gap_samples.saturating_add(1);
        }
        self.last_pop_ms = Some(t_ms);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let head = self.head?;
        let mask = (self.buckets.len() - 1) as u64;
        let (key, event) = self.buckets[(self.day & mask) as usize]
            .pop()
            .expect("head bucket is non-empty");
        debug_assert_eq!(key, head);
        self.observe_pop((key >> 64) as u64);
        self.len -= 1;
        if self.len == 0 {
            self.head = None;
        } else {
            // The next head is at or after the popped day: walk the
            // wheel forward, and after one full empty rotation jump to
            // the globally earliest bucket tail.
            let mut d = self.day;
            let mut scanned = 0;
            self.head = loop {
                if let Some(&(k, _)) = self.buckets[(d & mask) as usize].last() {
                    if day_of(k, self.day_shift) == d {
                        self.day = d;
                        break Some(k);
                    }
                }
                d += 1;
                scanned += 1;
                if scanned >= self.buckets.len() {
                    let k = self
                        .buckets
                        .iter()
                        .filter_map(|b| b.last())
                        .map(|&(k, _)| k)
                        .min()
                        .expect("len > 0");
                    self.day = day_of(k, self.day_shift);
                    break Some(k);
                }
            };
        }
        Some((unpack_time(key), event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.map(unpack_time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events, keeping the allocated capacity (and
    /// the learned gap histogram; the pop clock restarts so the gap
    /// across the clear is not counted).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
        self.head = None;
        self.last_pop_ms = None;
    }

    /// The queue's checkpoint state: every pending `(packed key, event)`
    /// in ascending key order, plus the next insertion sequence number.
    /// Counterpart of [`CalendarQueue::from_events`]; ascending order is
    /// also a valid [`EventQueue`] heap layout, so either kind can
    /// rebuild from it.
    pub fn checkpoint_events(&self) -> (Vec<(u128, E)>, u64)
    where
        E: Clone,
    {
        let mut out: Vec<(u128, E)> = self.buckets.iter().flatten().cloned().collect();
        out.sort_unstable_by_key(|&(key, _)| key);
        (out, self.seq)
    }

    /// Rebuilds a queue from checkpointed `(packed key, event)` records
    /// (any order) and the next insertion sequence number.
    pub fn from_events(events: Vec<(u128, E)>, seq: u64) -> Self {
        let mut q = CalendarQueue::with_capacity(events.len());
        for (key, event) in events {
            q.insert_key(key, event);
        }
        q.seq = seq;
        q
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

/// Runtime dispatch between the two [`QueueKind`]s.
///
/// Both kinds pop the identical packed `(time, seq)` sequence, so which
/// one a simulation runs on is a pure host-performance choice; the
/// two-variant match per operation is a predicted branch and costs
/// nothing measurable next to the queue work itself.
// One queue exists per engine, so the size gap the calendar's inline
// gap histogram opens between the variants is irrelevant — boxing it
// would buy nothing and cost an indirection on every pop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyEventQueue<E> {
    /// Binary min-heap ([`EventQueue`]).
    Heap(EventQueue<E>),
    /// Calendar queue / time wheel ([`CalendarQueue`]).
    Calendar(CalendarQueue<E>),
}

impl<E> AnyEventQueue<E> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::BinaryHeap => AnyEventQueue::Heap(EventQueue::new()),
            QueueKind::Calendar => AnyEventQueue::Calendar(CalendarQueue::new()),
        }
    }

    /// Creates an empty queue of the given kind with room for
    /// `capacity` events.
    pub fn with_capacity(kind: QueueKind, capacity: usize) -> Self {
        match kind {
            QueueKind::BinaryHeap => AnyEventQueue::Heap(EventQueue::with_capacity(capacity)),
            QueueKind::Calendar => AnyEventQueue::Calendar(CalendarQueue::with_capacity(capacity)),
        }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self {
            AnyEventQueue::Heap(_) => QueueKind::BinaryHeap,
            AnyEventQueue::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedules `event` to fire at `time`.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, event: E) {
        match self {
            AnyEventQueue::Heap(q) => q.schedule(time, event),
            AnyEventQueue::Calendar(q) => q.schedule(time, event),
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            AnyEventQueue::Heap(q) => q.pop(),
            AnyEventQueue::Calendar(q) => q.pop(),
        }
    }

    /// The timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            AnyEventQueue::Heap(q) => q.peek_time(),
            AnyEventQueue::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            AnyEventQueue::Heap(q) => q.len(),
            AnyEventQueue::Calendar(q) => q.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events, keeping the allocated capacity.
    pub fn clear(&mut self) {
        match self {
            AnyEventQueue::Heap(q) => q.clear(),
            AnyEventQueue::Calendar(q) => q.clear(),
        }
    }

    /// The queue's checkpoint state: every pending `(packed key, event)`
    /// record plus the next insertion sequence number, in an order any
    /// kind can rebuild from (heap layout order for the heap — also what
    /// historical snapshots hold — ascending key order for the
    /// calendar; both are valid heap layouts). Counterpart of
    /// [`AnyEventQueue::from_events`].
    pub fn checkpoint_events(&self) -> (Vec<(u128, E)>, u64)
    where
        E: Clone,
    {
        match self {
            AnyEventQueue::Heap(q) => {
                let (heap, seq) = q.raw_parts();
                (heap.to_vec(), seq)
            }
            AnyEventQueue::Calendar(q) => q.checkpoint_events(),
        }
    }

    /// Rebuilds a queue of the given kind from checkpointed records.
    ///
    /// `events` must come from [`AnyEventQueue::checkpoint_events`] (of
    /// either kind) with record order preserved: restoring a heap from
    /// heap-layout records reproduces the original layout verbatim, so
    /// pops replay exactly as the snapshotted run's would have.
    pub fn from_events(kind: QueueKind, events: Vec<(u128, E)>, seq: u64) -> Self {
        match kind {
            QueueKind::BinaryHeap => AnyEventQueue::Heap(EventQueue::from_raw_parts(events, seq)),
            QueueKind::Calendar => AnyEventQueue::Calendar(CalendarQueue::from_events(events, seq)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 1, 5] {
            q.schedule(SimTime::from_secs(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn steady_state_pops_keep_capacity() {
        let mut q = EventQueue::with_capacity(8);
        for round in 0..50u64 {
            for i in 0..8 {
                q.schedule(SimTime::from_secs(round * 10 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(q.heap.capacity() >= 8, "capacity must be retained");
    }

    #[test]
    fn calendar_pops_in_time_order_with_fifo_ties() {
        let mut q = CalendarQueue::new();
        for &t in &[9u64, 3, 7, 1, 5, 3, 3] {
            q.schedule(SimTime::from_secs(t), t);
        }
        let out: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, vec![1, 3, 3, 3, 5, 7, 9]);
    }

    #[test]
    fn calendar_handles_sparse_and_past_inserts() {
        let mut q = CalendarQueue::new();
        // A sparse far-future event forces the full-rotation jump...
        q.schedule(SimTime::from_secs(100_000), "far");
        q.schedule(SimTime::from_secs(1), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        // ...and scheduling earlier than the cursor pulls it back.
        q.schedule(SimTime::from_secs(2), "earlier");
        assert_eq!(q.pop().unwrap().1, "earlier");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_matches_heap_under_random_interleavings() {
        use crate::SimRng;
        let mut rng = SimRng::new(2020);
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        for step in 0..5_000u64 {
            if rng.gen_range_u64(0, 3) < 2 {
                let t = rng.gen_range_u64(0, 10_000);
                heap.schedule(SimTime::from_millis(t), step);
                cal.schedule(SimTime::from_millis(t), step);
            } else {
                assert_eq!(heap.pop(), cal.pop());
            }
            assert_eq!(heap.peek_time(), cal.peek_time());
            assert_eq!(heap.len(), cal.len());
        }
        while let Some(want) = heap.pop() {
            assert_eq!(cal.pop(), Some(want));
        }
        assert!(cal.pop().is_none());
    }

    #[test]
    fn checkpoint_restores_into_either_kind() {
        use crate::SimRng;
        let mut rng = SimRng::new(7);
        let mut q = AnyEventQueue::new(QueueKind::Calendar);
        for i in 0..500u64 {
            q.schedule(SimTime::from_millis(rng.gen_range_u64(0, 2_000)), i);
        }
        for _ in 0..200 {
            q.pop().unwrap();
        }
        let (events, seq) = q.checkpoint_events();
        let mut heap = AnyEventQueue::from_events(QueueKind::BinaryHeap, events.clone(), seq);
        let mut cal = AnyEventQueue::from_events(QueueKind::Calendar, events, seq);
        // New schedules continue the sequence identically on both sides.
        heap.schedule(SimTime::from_millis(500), 9_999);
        cal.schedule(SimTime::from_millis(500), 9_999);
        while let Some(want) = q.pop() {
            // The original keeps popping what both restored queues pop,
            // except the freshly scheduled event they share.
            let got_heap = heap.pop().unwrap();
            let got_cal = cal.pop().unwrap();
            assert_eq!(got_heap, got_cal);
            if got_heap.1 != 9_999 {
                assert_eq!(got_heap, want);
            } else {
                let next_heap = heap.pop().unwrap();
                assert_eq!(next_heap, cal.pop().unwrap());
                assert_eq!(next_heap, want);
            }
        }
    }

    #[test]
    fn calendar_auto_tunes_day_width_from_observed_gaps() {
        let mut q = CalendarQueue::new();
        // A steady 8 ms cadence, popped as it drains so every gap is
        // observed: enough samples to cross the tuner's threshold.
        for i in 0..200u64 {
            q.schedule(SimTime::from_millis(i * 8), i);
        }
        for _ in 0..200 {
            q.pop().unwrap();
        }
        assert!(q.gap_samples >= GAP_MIN_SAMPLES);
        // Median gap is 8 ms (4 significant bits) → 8 ms days.
        assert_eq!(q.tuned_shift(), Some(3));
        // The next redistribution adopts the tuned width.
        let fill = q.buckets.len() + 1;
        for i in 0..fill as u64 {
            q.schedule(SimTime::from_millis(10_000 + i * 8), i);
        }
        assert_eq!(q.day_shift, 3);
        // Pop order stays the packed-key order under the tuned width.
        let mut last = None;
        while let Some((t, _)) = q.pop() {
            assert!(last.is_none_or(|l| t >= l));
            last = Some(t);
        }
    }

    #[test]
    fn fixed_day_width_never_retunes() {
        // 100 ms rounds up to 128 ms days, pinned across regrowth.
        let mut q: CalendarQueue<u64> = CalendarQueue::with_fixed_day_width_ms(100);
        assert_eq!(q.day_shift, 7);
        for i in 0..500u64 {
            q.schedule(SimTime::from_millis(i * 3), i);
        }
        for _ in 0..500 {
            q.pop().unwrap();
        }
        // Plenty of 3 ms gaps observed, but the pinned width holds
        // through another grow.
        let fill = q.buckets.len() + 1;
        for i in 0..fill as u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        assert_eq!(q.day_shift, 7);
        assert_eq!(q.fixed_shift, Some(7));
    }

    #[test]
    fn queue_kind_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(QueueKind::from_str("heap"), Ok(QueueKind::BinaryHeap));
        assert_eq!(
            QueueKind::from_str("Binary-Heap"),
            Ok(QueueKind::BinaryHeap)
        );
        assert_eq!(QueueKind::from_str("calendar"), Ok(QueueKind::Calendar));
        assert!(QueueKind::from_str("wheelbarrow").is_err());
        assert_eq!(QueueKind::BinaryHeap.to_string(), "heap");
        assert_eq!(QueueKind::Calendar.to_string(), "calendar");
        assert_eq!(QueueKind::default(), QueueKind::BinaryHeap);
    }

    #[test]
    fn randomized_order_matches_sorted_reference() {
        use crate::SimRng;
        let mut rng = SimRng::new(99);
        let mut q = EventQueue::new();
        let mut want: Vec<(u64, u64)> = Vec::new();
        for i in 0..1000 {
            let t = rng.gen_range_u64(0, 500);
            q.schedule(SimTime::from_millis(t), i);
            want.push((t, i));
        }
        // Stable sort by time preserves insertion order on ties — exactly
        // the queue's contract.
        want.sort_by_key(|&(t, _)| t);
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_millis(), e))).collect();
        assert_eq!(got, want);
    }
}
