//! Timestamped event queue with deterministic FIFO tie-breaking.

use crate::SimTime;

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order. Events scheduled for the same
/// instant pop in insertion order (FIFO), which keeps simulation runs
/// deterministic regardless of heap internals.
///
/// Internally this is a hand-rolled binary min-heap over a flat `Vec`
/// whose priority is a single packed `(time, sequence)` `u128`: one
/// integer comparison per sift step instead of a two-field lexicographic
/// compare, and pops reuse the buffer's capacity, so a queue at its
/// steady-state size allocates nothing.
///
/// # Example
///
/// ```
/// use mlora_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Min-heap of `(packed priority, event)`; `heap[0]` is the earliest.
    heap: Vec<(u128, E)>,
    seq: u64,
}

/// Packs `(time, seq)` into one ordered priority word: the millisecond
/// timestamp in the high 64 bits, the insertion sequence in the low 64,
/// so `u128` ordering is exactly lexicographic `(time, seq)` ordering.
fn pack(time: SimTime, seq: u64) -> u128 {
    (u128::from(time.as_millis()) << 64) | u128::from(seq)
}

fn unpack_time(key: u128) -> SimTime {
    SimTime::from_millis((key >> 64) as u64)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let key = pack(time, self.seq);
        self.seq += 1;
        self.heap.push((key, event));
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let (key, event) = self.heap.pop().expect("len checked above");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((unpack_time(key), event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&(key, _)| unpack_time(key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The queue's raw state: the backing heap (packed `(time, seq)`
    /// priority words paired with events, in heap layout order) and the
    /// next insertion sequence number. Checkpoint counterpart of
    /// [`EventQueue::from_raw_parts`].
    pub fn raw_parts(&self) -> (&[(u128, E)], u64) {
        (&self.heap, self.seq)
    }

    /// Rebuilds a queue from state captured by [`EventQueue::raw_parts`].
    ///
    /// `heap` must be a valid binary min-heap over the packed priority
    /// words (any slice returned by [`EventQueue::raw_parts`] is); the
    /// layout is restored verbatim so subsequent pops replay in exactly
    /// the original order.
    pub fn from_raw_parts(heap: Vec<(u128, E)>, seq: u64) -> Self {
        debug_assert!((1..heap.len()).all(|i| heap[(i - 1) / 2].0 <= heap[i].0));
        EventQueue { heap, seq }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smaller = if right < n && self.heap[right].0 < self.heap[left].0 {
                right
            } else {
                left
            };
            if self.heap[i].0 <= self.heap[smaller].0 {
                break;
            }
            self.heap.swap(i, smaller);
            i = smaller;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 1, 5] {
            q.schedule(SimTime::from_secs(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn steady_state_pops_keep_capacity() {
        let mut q = EventQueue::with_capacity(8);
        for round in 0..50u64 {
            for i in 0..8 {
                q.schedule(SimTime::from_secs(round * 10 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(q.heap.capacity() >= 8, "capacity must be retained");
    }

    #[test]
    fn randomized_order_matches_sorted_reference() {
        use crate::SimRng;
        let mut rng = SimRng::new(99);
        let mut q = EventQueue::new();
        let mut want: Vec<(u64, u64)> = Vec::new();
        for i in 0..1000 {
            let t = rng.gen_range_u64(0, 500);
            q.schedule(SimTime::from_millis(t), i);
            want.push((t, i));
        }
        // Stable sort by time preserves insertion order on ties — exactly
        // the queue's contract.
        want.sort_by_key(|&(t, _)| t);
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_millis(), e))).collect();
        assert_eq!(got, want);
    }
}
