//! Typed identifiers for simulation entities.
//!
//! Newtypes prevent mixing up device, gateway, and message identifiers at
//! compile time (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Creates an identifier from its raw index.
            pub const fn new(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw index behind this identifier.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The raw index as a `usize`, for vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                $name(raw)
            }
        }

        impl crate::DenseKey for $name {
            fn dense_index(self) -> usize {
                self.index()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a mobile LoRa end-device (a bus in the London scenario).
    NodeId,
    u32,
    "node-"
);

id_type!(
    /// Identifier of a static LoRaWAN gateway (sink).
    GatewayId,
    u32,
    "gw-"
);

id_type!(
    /// Identifier of an application-layer message (one 20-byte reading).
    MessageId,
    u64,
    "msg-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_display() {
        let n = NodeId::new(7);
        assert_eq!(n.raw(), 7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "node-7");
        assert_eq!(GatewayId::new(3).to_string(), "gw-3");
        assert_eq!(MessageId::new(42).to_string(), "msg-42");
    }

    #[test]
    fn usable_in_collections() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(MessageId::new(100) > MessageId::new(99));
    }

    #[test]
    fn from_raw() {
        let g: GatewayId = 9u32.into();
        assert_eq!(g, GatewayId::new(9));
    }
}
