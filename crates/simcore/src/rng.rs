//! Seeded, fork-able randomness.
//!
//! A single `u64` master seed must reproduce an entire simulation run.
//! [`SimRng::fork`] derives independent child generators from the master
//! seed and a stream label, so subsystems (mobility, shadowing, workload)
//! draw from decoupled streams: adding draws in one subsystem does not
//! perturb another.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random number generator for simulations.
///
/// # Example
///
/// ```
/// use mlora_simcore::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.gen_u64(), b.gen_u64());
///
/// // Forked streams are independent of draw order on the parent.
/// let mut fork1 = SimRng::new(42).fork(7);
/// let mut parent = SimRng::new(42);
/// let _ = parent.gen_u64();
/// let mut fork2 = parent.fork(7);
/// assert_eq!(fork1.gen_u64(), fork2.gen_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

/// SplitMix64 step; used to decorrelate seeds derived from small integers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The master seed this generator (or its ancestor) was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generator's full state: the master seed and the four raw
    /// xoshiro256++ state words. Together with [`SimRng::from_state`]
    /// this makes the stream checkpointable: a rebuilt generator
    /// continues the draw sequence exactly where this one stands.
    pub fn state(&self) -> (u64, [u64; 4]) {
        (self.seed, self.inner.state())
    }

    /// Rebuilds a generator from a state captured by [`SimRng::state`].
    pub fn from_state(seed: u64, words: [u64; 4]) -> Self {
        SimRng {
            seed,
            inner: SmallRng::from_state(words),
        }
    }

    /// Derives an independent child generator for `stream`.
    ///
    /// Forking depends only on the master seed and the stream label — not
    /// on how many values have been drawn — so subsystems stay decoupled.
    pub fn fork(&self, stream: u64) -> SimRng {
        let child_seed = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)));
        SimRng {
            seed: child_seed,
            inner: SmallRng::seed_from_u64(splitmix64(child_seed)),
        }
    }

    /// A uniformly random `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        self.inner.gen_range(lo..hi)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// A sample from the standard normal distribution (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; u1 in (0,1] avoids ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A sample from `N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev: {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// A sample from a log-normal distribution with the given parameters of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A sample from an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "non-positive rate: {rate}");
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -u.ln() / rate
    }

    /// Picks a uniformly random index in `[0, len)`, or `None` if `len == 0`.
    pub fn choose_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.inner.gen_range(0..len))
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_draw_independent() {
        let mut parent = SimRng::new(99);
        let mut f1 = parent.fork(3);
        for _ in 0..10 {
            let _ = parent.gen_u64();
        }
        let mut f2 = parent.fork(3);
        for _ in 0..20 {
            assert_eq!(f1.gen_u64(), f2.gen_u64());
        }
    }

    #[test]
    fn forks_of_different_streams_differ() {
        let parent = SimRng::new(99);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_ne!(f1.gen_u64(), f2.gen_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = rng.gen_range_u64(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = SimRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut rng = SimRng::new(8);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SimRng::new(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!(!rng.gen_bool(-0.5)); // clamped to 0
        assert!(rng.gen_bool(1.5)); // clamped to 1
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_index_empty() {
        let mut rng = SimRng::new(11);
        assert_eq!(rng.choose_index(0), None);
        assert!(rng.choose_index(5).unwrap() < 5);
    }
}
