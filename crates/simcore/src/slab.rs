//! Dense, index-addressed storage for hot simulation state.
//!
//! Discrete-event hot loops touch per-entity state on every event; hash
//! lookups and per-event allocation dominate once fleets reach thousands
//! of entities. This module provides the two shapes of dense storage the
//! engine uses instead:
//!
//! * [`Slab`] — a generational arena for entities with dynamic lifetimes
//!   (frames in flight). Insertion reuses vacated slots through a free
//!   list, keys are `(index, generation)` pairs so a stale key can never
//!   alias a recycled slot, and iteration is in index order.
//! * [`DenseMap`] — a flat `Vec`-backed map for entities that already
//!   carry small dense indices (devices keyed by
//!   [`NodeId`](crate::NodeId)). Lookup is a bounds-checked array index.
//!
//! # Example
//!
//! ```
//! use mlora_simcore::Slab;
//!
//! let mut slab = Slab::new();
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(slab[a], "alpha");
//! assert_eq!(slab.remove(b), Some("beta"));
//! // The slot is recycled under a new generation: the old key is dead.
//! let c = slab.insert("gamma");
//! assert_eq!(slab.get(b), None);
//! assert_eq!(slab[c], "gamma");
//! ```

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A generational handle into a [`Slab`].
///
/// Keys are `Copy` and order by `(index, generation)`; a key obtained
/// from one slab must only be used with that slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// The slot index behind this key.
    pub const fn index(self) -> usize {
        self.index as usize
    }

    /// The generation that must match for the key to resolve.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl SlabKey {
    /// Rebuilds a key from its `(index, generation)` parts — the
    /// checkpoint counterpart of [`SlabKey::index`] and
    /// [`SlabKey::generation`]. The key only resolves against a slab
    /// whose slot still carries the same generation.
    pub const fn from_parts(index: u32, generation: u32) -> Self {
        SlabKey { index, generation }
    }
}

impl fmt::Display for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slab-{}v{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone)]
enum Entry<T> {
    Vacant { generation: u32 },
    Occupied { generation: u32, value: T },
}

/// A generational arena with free-list slot reuse.
///
/// All operations are O(1) except [`Slab::iter`] and [`Slab::retain`],
/// which are linear in the number of *slots* (occupied plus vacant).
/// Capacity is never shrunk, so a slab that reached its steady-state
/// size performs no further allocation.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` values.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing a vacated slot when one is available.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            let generation = match *entry {
                Entry::Vacant { generation } => generation,
                Entry::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            *entry = Entry::Occupied { generation, value };
            SlabKey { index, generation }
        } else {
            let index = u32::try_from(self.entries.len()).expect("slab overflow");
            self.entries.push(Entry::Occupied {
                generation: 0,
                value,
            });
            SlabKey {
                index,
                generation: 0,
            }
        }
    }

    /// The value behind `key`, if it is still live.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.entries.get(key.index()) {
            Some(Entry::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `key`, if it is still live.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.entries.get_mut(key.index()) {
            Some(Entry::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Removes and returns the value behind `key`.
    ///
    /// The slot's generation advances, so `key` (and any copy of it)
    /// stops resolving; the slot itself is recycled by later insertions.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let entry = self.entries.get_mut(key.index())?;
        match entry {
            Entry::Occupied { generation, .. } if *generation == key.generation => {
                let next = Entry::Vacant {
                    generation: key.generation.wrapping_add(1),
                };
                let Entry::Occupied { value, .. } = std::mem::replace(entry, next) else {
                    unreachable!("matched occupied above");
                };
                self.free.push(key.index);
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    /// Iterates the occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(index, entry)| match entry {
                Entry::Occupied { generation, value } => Some((
                    SlabKey {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Entry::Vacant { .. } => None,
            })
    }

    /// Iterates every *slot* in index order as `(generation, value)`,
    /// vacant slots included (`None` value). Together with
    /// [`Slab::free_list`] this captures the arena's full layout, so a
    /// checkpoint rebuilt through [`Slab::from_raw_parts`] hands out the
    /// same keys in the same order as the original.
    pub fn raw_slots(&self) -> impl Iterator<Item = (u32, Option<&T>)> + '_ {
        self.entries.iter().map(|entry| match entry {
            Entry::Occupied { generation, value } => (*generation, Some(value)),
            Entry::Vacant { generation } => (*generation, None),
        })
    }

    /// The free list, in pop order from the back: the checkpoint
    /// counterpart of [`Slab::from_raw_parts`].
    pub fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Total number of slots (occupied + vacant). Grows monotonically
    /// between [`Slab::from_raw_parts`] rebuilds, and — together with
    /// [`Slab::has_free_slot`] — is part of the checkpointed layout, so
    /// callers can derive growth-boundary policies (e.g. batched sweeps)
    /// that replay identically across a checkpoint/restore.
    pub fn slot_count(&self) -> usize {
        self.entries.len()
    }

    /// True when the next [`Slab::insert`] will recycle a vacated slot
    /// rather than grow the arena.
    pub fn has_free_slot(&self) -> bool {
        !self.free.is_empty()
    }

    /// Rebuilds a slab from state captured by [`Slab::raw_slots`] and
    /// [`Slab::free_list`].
    ///
    /// # Panics
    ///
    /// Panics if a free-list index is out of range or points at an
    /// occupied slot.
    pub fn from_raw_parts(slots: Vec<(u32, Option<T>)>, free: Vec<u32>) -> Self {
        let mut len = 0;
        let entries: Vec<Entry<T>> = slots
            .into_iter()
            .map(|(generation, value)| match value {
                Some(value) => {
                    len += 1;
                    Entry::Occupied { generation, value }
                }
                None => Entry::Vacant { generation },
            })
            .collect();
        for &index in &free {
            assert!(
                matches!(entries.get(index as usize), Some(Entry::Vacant { .. })),
                "free-list entry {index} does not name a vacant slot"
            );
        }
        Slab { entries, free, len }
    }

    /// Keeps only the values for which `keep` returns true, visiting
    /// slots in index order. Removal recycles slots exactly like
    /// [`Slab::remove`], without allocating.
    pub fn retain(&mut self, mut keep: impl FnMut(SlabKey, &mut T) -> bool) {
        for index in 0..self.entries.len() {
            let entry = &mut self.entries[index];
            if let Entry::Occupied { generation, value } = entry {
                let key = SlabKey {
                    index: index as u32,
                    generation: *generation,
                };
                if !keep(key, value) {
                    *entry = Entry::Vacant {
                        generation: key.generation.wrapping_add(1),
                    };
                    self.free.push(key.index);
                    self.len -= 1;
                }
            }
        }
    }
}

impl<T> Index<SlabKey> for Slab<T> {
    type Output = T;
    fn index(&self, key: SlabKey) -> &T {
        self.get(key).expect("stale or foreign slab key")
    }
}

impl<T> IndexMut<SlabKey> for Slab<T> {
    fn index_mut(&mut self, key: SlabKey) -> &mut T {
        self.get_mut(key).expect("stale or foreign slab key")
    }
}

/// A key type with a small dense index, usable with [`DenseMap`].
///
/// Implemented by the simulation id newtypes ([`NodeId`](crate::NodeId),
/// [`GatewayId`](crate::GatewayId), [`MessageId`](crate::MessageId)).
pub trait DenseKey: Copy {
    /// The dense index of this key.
    fn dense_index(self) -> usize;
}

/// A flat `Vec`-backed map for keys that are already dense indices.
///
/// Lookup, insertion and removal are a single bounds-checked array
/// access. The backing vector grows to the largest inserted index and is
/// never shrunk, so steady-state operation performs no allocation.
///
/// # Example
///
/// ```
/// use mlora_simcore::{DenseMap, NodeId};
///
/// let mut m: DenseMap<NodeId, &str> = DenseMap::new();
/// m.insert(NodeId::new(3), "bus three");
/// assert_eq!(m.get(NodeId::new(3)), Some(&"bus three"));
/// assert_eq!(m.get(NodeId::new(4)), None);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DenseMap<K, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: DenseKey, V> DenseMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty map with `capacity` pre-allocated slots.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(capacity, || None);
        DenseMap {
            slots,
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let index = key.dense_index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let old = self.slots[index].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.dense_index())?.as_ref()
    }

    /// Mutable access to the value at `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots.get_mut(key.dense_index())?.as_mut()
    }

    /// True if `key` is occupied.
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let old = self.slots.get_mut(key.dense_index())?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates `(dense index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (i, v)))
    }

    /// Iterates values in key-index order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.slots.iter().filter_map(|slot| slot.as_ref())
    }

    /// Iterates values mutably, in key-index order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.slots.iter_mut().filter_map(|slot| slot.as_mut())
    }
}

impl<K: DenseKey, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        DenseMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], 10);
        assert_eq!(slab.get(b), Some(&20));
        *slab.get_mut(a).unwrap() = 11;
        assert_eq!(slab.remove(a), Some(11));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slab_recycles_slots_with_new_generation() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        slab.remove(a).unwrap();
        let b = slab.insert("b");
        // Same slot, different generation.
        assert_eq!(a.index(), b.index());
        assert_ne!(a.generation(), b.generation());
        assert_eq!(slab.get(a), None, "stale key must not alias");
        assert_eq!(slab[b], "b");
        // No net growth: one slot serves both lifetimes.
        assert_eq!(slab.entries.len(), 1);
    }

    #[test]
    fn slab_iter_is_index_ordered() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..5).map(|i| slab.insert(i * 10)).collect();
        slab.remove(keys[2]).unwrap();
        let got: Vec<i32> = slab.iter().map(|(_, &v)| v).collect();
        assert_eq!(got, vec![0, 10, 30, 40]);
        let idx: Vec<usize> = slab.iter().map(|(k, _)| k.index()).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slab_retain_removes_and_recycles() {
        let mut slab = Slab::new();
        for i in 0..6 {
            slab.insert(i);
        }
        slab.retain(|_, v| *v % 2 == 0);
        assert_eq!(slab.len(), 3);
        let got: Vec<i32> = slab.iter().map(|(_, &v)| v).collect();
        assert_eq!(got, vec![0, 2, 4]);
        // Vacated slots are reused before the slab grows.
        let before = slab.entries.len();
        slab.insert(100);
        assert_eq!(slab.entries.len(), before);
    }

    #[test]
    #[should_panic(expected = "stale or foreign slab key")]
    fn slab_index_panics_on_stale_key() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let _ = slab[a];
    }

    #[test]
    fn dense_map_basics() {
        let mut m: DenseMap<NodeId, u32> = DenseMap::with_capacity(2);
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId::new(5), 50), None);
        assert_eq!(m.insert(NodeId::new(1), 10), None);
        assert_eq!(m.insert(NodeId::new(5), 55), Some(50));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(NodeId::new(5)), Some(&55));
        assert!(m.contains_key(NodeId::new(1)));
        assert!(!m.contains_key(NodeId::new(0)));
        *m.get_mut(NodeId::new(1)).unwrap() += 1;
        assert_eq!(m.remove(NodeId::new(1)), Some(11));
        assert_eq!(m.remove(NodeId::new(1)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn dense_map_iterates_in_index_order() {
        let mut m: DenseMap<NodeId, &str> = DenseMap::new();
        m.insert(NodeId::new(4), "d");
        m.insert(NodeId::new(0), "a");
        m.insert(NodeId::new(2), "b");
        let got: Vec<(usize, &str)> = m.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(got, vec![(0, "a"), (2, "b"), (4, "d")]);
        let vals: Vec<&str> = m.values().copied().collect();
        assert_eq!(vals, vec!["a", "b", "d"]);
        for v in m.values_mut() {
            *v = "x";
        }
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec!["x"; 3]);
    }

    #[test]
    fn slab_key_display() {
        let mut slab = Slab::new();
        let a = slab.insert(());
        assert_eq!(a.to_string(), "slab-0v0");
    }
}
