//! Streaming statistics for metric collection.
//!
//! All accumulators are single-pass and allocation-light so they can run
//! inside the hot simulation loop: [`Welford`] for running mean/variance,
//! [`Histogram`] for fixed-width distributions, [`TimeSeries`] for
//! time-bucketed counts (the 10-minute throughput series of Figs. 10–11),
//! and [`quantile`] over sorted samples.

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// Welford's online algorithm for running mean and variance.
///
/// Numerically stable single-pass accumulator.
///
/// # Example
///
/// ```
/// use mlora_simcore::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by *n*), or 0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by *n − 1*), or 0 with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (σ/√n), or 0 if empty.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The accumulator's raw state `(count, mean, m2, min, max)` — the
    /// checkpoint counterpart of [`Welford::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from state captured by
    /// [`Welford::raw_parts`].
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Welford {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping.
///
/// Samples below `lo` land in the first bin; samples at or above `hi` land
/// in the last bin. Used for distributions such as trip durations
/// (Fig. 7b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "bad histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Bin counts, in order.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterator over `(bin_midpoint, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }

    /// Fraction of samples in each bin; empty histogram yields zeros.
    pub fn normalized(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / self.count as f64)
            .collect()
    }
}

/// Counts events into fixed-width time buckets.
///
/// Backs the "messages received per 10 minutes" series of Figs. 10–11.
///
/// Two allocation disciplines are available: [`TimeSeries::new`] sizes
/// the bucket vector to a known horizon (events past it land in the
/// last bucket), while [`TimeSeries::bounded`] pins peak memory to a
/// fixed capacity and adaptively doubles the bucket width whenever an
/// event lands past the current span — the right discipline for
/// open-ended or metro-scale runs where the horizon times the wanted
/// resolution would be unbounded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket: SimDuration,
    counts: Vec<u64>,
    /// Bounded mode: instead of clamping far-future events into the
    /// last bucket, fold the series in place (halving resolution) until
    /// they fit. The `counts` allocation never grows.
    bounded: bool,
}

impl TimeSeries {
    /// Creates a series with the given bucket width covering `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration, horizon: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let n = horizon.as_millis().div_ceil(bucket.as_millis()) as usize;
        TimeSeries {
            bucket,
            counts: vec![0; n.max(1)],
            bounded: false,
        }
    }

    /// Creates a memory-bounded series: at most `capacity` buckets are
    /// ever allocated, starting at `bucket` width. An event past the
    /// covered span folds the series in place — adjacent buckets merge
    /// and the width doubles — until the event fits, so arbitrarily
    /// long runs downsample instead of growing.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or `capacity` is zero.
    pub fn bounded(bucket: SimDuration, capacity: usize) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        assert!(capacity > 0, "need at least one bucket");
        TimeSeries {
            bucket,
            counts: vec![0; capacity],
            bounded: true,
        }
    }

    /// Records one event at `time`; events beyond the horizon land in the
    /// last bucket (fixed series) or halve the resolution until they fit
    /// (bounded series).
    pub fn record(&mut self, time: SimTime) {
        self.record_n(time, 1);
    }

    /// Records `n` events at `time`.
    pub fn record_n(&mut self, time: SimTime, n: u64) {
        let mut idx = (time.as_millis() / self.bucket.as_millis()) as usize;
        if self.bounded {
            while idx >= self.counts.len() {
                if !self.fold() {
                    // The width can no longer double without overflowing
                    // the millisecond clock: degrade to the fixed-series
                    // discipline and clamp into the last bucket, rather
                    // than folding forever without making progress.
                    break;
                }
                idx = (time.as_millis() / self.bucket.as_millis()) as usize;
            }
        }
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += n;
    }

    /// Halves the resolution in place: bucket `i` becomes the sum of old
    /// buckets `2i` and `2i+1`, and the bucket width doubles. Totals are
    /// preserved exactly; the allocation is untouched. Returns `false`
    /// without touching anything when the doubled width would overflow
    /// `u64` milliseconds (`SimDuration` multiplication saturates, so a
    /// blind fold would stop halving indices and spin).
    fn fold(&mut self) -> bool {
        let width = self.bucket.as_millis();
        if width > u64::MAX / 2 {
            return false;
        }
        let n = self.counts.len();
        for i in 0..n / 2 {
            self.counts[i] = self.counts[2 * i] + self.counts[2 * i + 1];
        }
        if n % 2 == 1 {
            self.counts[n / 2] = self.counts[n - 1];
        }
        for c in &mut self.counts[n.div_ceil(2)..] {
            *c = 0;
        }
        self.bucket = SimDuration::from_millis(width * 2);
        true
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when this series folds instead of clamping (built by
    /// [`TimeSeries::bounded`]).
    pub fn is_bounded(&self) -> bool {
        self.bounded
    }

    /// Rebuilds a series from its parts — the checkpoint counterpart of
    /// [`TimeSeries::bucket`], [`TimeSeries::counts`] and
    /// [`TimeSeries::is_bounded`].
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or `counts` is empty.
    pub fn from_raw_parts(bucket: SimDuration, counts: Vec<u64>, bounded: bool) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        assert!(!counts.is_empty(), "need at least one bucket");
        TimeSeries {
            bucket,
            counts,
            bounded,
        }
    }

    /// Iterator over `(bucket_start, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (SimTime::ZERO + self.bucket * i as u64, c))
    }
}

/// Linear-interpolated quantile of a **sorted** slice.
///
/// Returns `None` on an empty slice. `q` is clamped to `[0, 1]`.
///
/// # Example
///
/// ```
/// use mlora_simcore::stats::quantile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.std_error(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.mean(), 1.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // clamps to first
        h.push(0.5);
        h.push(5.0);
        h.push(9.99);
        h.push(100.0); // clamps to last
        assert_eq!(h.bins(), &[2, 0, 1, 0, 2]);
        assert_eq!(h.count(), 5);
        let norm = h.normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_midpoints() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.push(1.5);
        let mids: Vec<f64> = h.iter().map(|(m, _)| m).collect();
        assert_eq!(mids, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn timeseries_bucketing() {
        let mut ts = TimeSeries::new(SimDuration::from_mins(10), SimDuration::from_hours(1));
        ts.record(SimTime::from_secs(0));
        ts.record(SimTime::from_secs(599));
        ts.record(SimTime::from_secs(600));
        ts.record_n(SimTime::from_secs(3599), 3);
        ts.record(SimTime::from_secs(100_000)); // beyond horizon -> last
        assert_eq!(ts.counts(), &[2, 1, 0, 0, 0, 4]);
        assert_eq!(ts.total(), 7);
        let first = ts.iter().next().unwrap();
        assert_eq!(first.0, SimTime::ZERO);
    }

    #[test]
    fn bounded_timeseries_folds_instead_of_growing() {
        let mut ts = TimeSeries::bounded(SimDuration::from_mins(10), 8);
        // Fill the initial span: 8 buckets x 10 min = 80 min.
        for i in 0..8u64 {
            ts.record_n(SimTime::from_secs(i * 600), i + 1);
        }
        assert_eq!(ts.counts(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(ts.bucket(), SimDuration::from_mins(10));

        // One event just past the span folds once: 20-min buckets.
        ts.record(SimTime::from_secs(80 * 60));
        assert_eq!(ts.counts().len(), 8);
        assert_eq!(ts.bucket(), SimDuration::from_mins(20));
        assert_eq!(ts.counts(), &[3, 7, 11, 15, 1, 0, 0, 0]);
        assert_eq!(ts.total(), 37);

        // A far-future event folds repeatedly until it fits, never
        // growing the allocation. 8 buckets starting at 20 min cover
        // t < 160 min; reaching 1000 h (60000 min) needs the width up
        // at 10240 min (8 x 10240 = 81920 min of coverage).
        ts.record(SimTime::from_secs(1000 * 3600));
        assert_eq!(ts.counts().len(), 8);
        assert_eq!(ts.bucket(), SimDuration::from_mins(10240));
        assert_eq!(ts.total(), 38);
        // Everything recorded so far collapsed into the first bucket,
        // except the far-future event at 60000 / 10240 = bucket 5.
        assert_eq!(ts.counts()[0], 37);
        assert_eq!(ts.counts()[5], 1);
    }

    #[test]
    fn bounded_timeseries_odd_capacity_preserves_total() {
        let mut ts = TimeSeries::bounded(SimDuration::from_secs(1), 5);
        for i in 0..5u64 {
            ts.record_n(SimTime::from_secs(i), 10 + i);
        }
        assert_eq!(ts.total(), 60);
        ts.record(SimTime::from_secs(9)); // forces a fold with odd length
        assert_eq!(ts.counts().len(), 5);
        assert_eq!(ts.bucket(), SimDuration::from_secs(2));
        assert_eq!(ts.counts(), &[21, 25, 14, 0, 1]);
        assert_eq!(ts.total(), 61);
    }

    #[test]
    fn bounded_timeseries_sample_exactly_at_fold_threshold() {
        // 4 buckets x 10 s cover t < 40 s; a sample at exactly 40 s is
        // the first instant past the span and must trigger exactly one
        // fold, landing in bucket 40 / 20 = 2.
        let mut ts = TimeSeries::bounded(SimDuration::from_secs(10), 4);
        ts.record(SimTime::from_secs(39)); // last covered instant
        assert_eq!(ts.bucket(), SimDuration::from_secs(10));
        ts.record(SimTime::from_secs(40)); // exact threshold
        assert_eq!(ts.bucket(), SimDuration::from_secs(20));
        assert_eq!(ts.counts(), &[0, 1, 1, 0]);
        assert_eq!(ts.total(), 2);
    }

    #[test]
    fn bounded_timeseries_two_consecutive_folds() {
        // 4 buckets x 10 s; a sample at 80 s needs two folds (span 40 s
        // -> 80 s -> 160 s) and lands in bucket 80 / 40 = 2.
        let mut ts = TimeSeries::bounded(SimDuration::from_secs(10), 4);
        ts.record_n(SimTime::from_secs(5), 3);
        ts.record_n(SimTime::from_secs(35), 2);
        ts.record(SimTime::from_secs(80));
        assert_eq!(ts.bucket(), SimDuration::from_secs(40));
        assert_eq!(ts.counts(), &[5, 0, 1, 0]);
        assert_eq!(ts.total(), 6);
    }

    #[test]
    fn bounded_timeseries_terminates_at_clock_limit() {
        // A sample at the u64 millisecond clock limit: bucket doubling
        // saturates, so folding can stop making progress. The old loop
        // spun forever on a single-bucket series; now the series
        // degrades to clamping and the totals stay exact.
        let mut ts = TimeSeries::bounded(SimDuration::from_millis(1), 1);
        ts.record_n(SimTime::from_millis(3), 2);
        ts.record(SimTime::from_millis(u64::MAX));
        assert_eq!(ts.counts(), &[3]);
        assert_eq!(ts.total(), 3);

        // Multi-bucket series near the limit keep folding until the
        // sample fits and preserve every earlier count.
        let mut ts = TimeSeries::bounded(SimDuration::from_millis(1), 4);
        ts.record_n(SimTime::from_millis(0), 7);
        ts.record(SimTime::from_millis(u64::MAX));
        assert_eq!(ts.total(), 8);
        assert_eq!(ts.counts()[0], 7);
        assert!(ts.bucket().as_millis() > u64::MAX / 8);
    }

    #[test]
    fn timeseries_raw_parts_round_trip() {
        let mut ts = TimeSeries::bounded(SimDuration::from_secs(10), 4);
        ts.record_n(SimTime::from_secs(5), 3);
        ts.record(SimTime::from_secs(41));
        let rebuilt =
            TimeSeries::from_raw_parts(ts.bucket(), ts.counts().to_vec(), ts.is_bounded());
        assert_eq!(rebuilt, ts);
        // The rebuilt series keeps folding exactly like the original.
        let mut a = ts.clone();
        let mut b = rebuilt;
        a.record(SimTime::from_secs(500));
        b.record(SimTime::from_secs(500));
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_values() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&xs, -1.0), Some(1.0)); // clamped
    }
}
