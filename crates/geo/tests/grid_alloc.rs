//! Allocation accounting for the grid hot path: steady-state
//! `within_into` queries and `relocate` churn must not touch the heap.
//!
//! Uses a counting wrapper around the system allocator; the counter is a
//! process-wide total, so each assertion brackets exactly the code under
//! test and nothing else runs concurrently (integration tests in this
//! binary run on one thread: there is only one test).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mlora_geo::{GridIndex, Point};
use mlora_simcore::SimRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_queries_and_relocates_do_not_allocate() {
    let mut rng = SimRng::new(7);
    let side = 10_000.0;
    let cell = 500.0;
    let items: Vec<(u32, Point)> = (0..2_000)
        .map(|i| {
            (
                i,
                Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)),
            )
        })
        .collect();
    let mut grid = GridIndex::build(items.iter().copied(), cell);
    let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    let mut scratch: Vec<(u32, Point)> = Vec::new();
    let probes: Vec<Point> = (0..64)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect();

    // One full cycle: every item crosses one cell per step and returns to
    // its start after `side / cell` steps, so the set of touched cells and
    // the per-cell occupancy maxima repeat exactly cycle over cycle.
    let mut cycle = |grid: &mut GridIndex<u32>, positions: &mut Vec<Point>| {
        for _ in 0..(side / cell) as usize {
            for (i, pos) in positions.iter_mut().enumerate() {
                let next = Point::new((pos.x + cell) % side, pos.y);
                assert!(grid.relocate(i as u32, *pos, next));
                *pos = next;
            }
            for &c in &probes {
                grid.within_into(c, 620.0, &mut scratch);
            }
        }
    };

    // Warm-up settles every bucket and the scratch vector at the cycle's
    // maximum capacity.
    cycle(&mut grid, &mut positions);

    // Steady state: the identical churn pattern must be allocation-free.
    let before = allocations();
    cycle(&mut grid, &mut positions);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "grid hot path allocated {} times in steady state",
        after - before
    );
}
