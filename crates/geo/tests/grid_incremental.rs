//! Property test: an incrementally maintained [`GridIndex`] is
//! indistinguishable from one rebuilt from scratch, after *arbitrary*
//! interleavings of insert / remove / relocate — same membership, same
//! query results, same canonical iteration order.

use mlora_geo::{GridIndex, Point};
use mlora_simcore::SimRng;
use proptest::prelude::*;

const AREA: f64 = 5_000.0;

fn random_point(rng: &mut SimRng) -> Point {
    Point::new(rng.gen_range_f64(0.0, AREA), rng.gen_range_f64(0.0, AREA))
}

proptest! {
    /// Applies a random op sequence to one incremental index while
    /// mirroring the membership in a plain `Vec` model, then checks the
    /// incremental index against a from-scratch rebuild of the model at
    /// several probe points — exact equality, order included.
    #[test]
    fn incremental_agrees_with_rebuild(
        seed in 0u64..1_000_000,
        n_ops in 20usize..240,
        cell in 40.0f64..900.0,
    ) {
        let mut rng = SimRng::new(seed);
        let mut grid: GridIndex<u32> = GridIndex::new(cell);
        let mut model: Vec<(u32, Point)> = Vec::new();
        let mut next_id = 0u32;

        for _ in 0..n_ops {
            match rng.gen_range_u64(0, 3) {
                // Insert a fresh item.
                0 => {
                    let pos = random_point(&mut rng);
                    grid.insert(next_id, pos);
                    model.push((next_id, pos));
                    next_id += 1;
                }
                // Remove a random live item.
                1 if !model.is_empty() => {
                    let at = rng.gen_range_u64(0, model.len() as u64) as usize;
                    let (id, pos) = model.swap_remove(at);
                    prop_assert!(grid.remove(id, pos), "remove lost item {id}");
                }
                // Relocate a random live item.
                2 if !model.is_empty() => {
                    let at = rng.gen_range_u64(0, model.len() as u64) as usize;
                    let new_pos = random_point(&mut rng);
                    let (id, old_pos) = model[at];
                    prop_assert!(
                        grid.relocate(id, old_pos, new_pos),
                        "relocate lost item {id}"
                    );
                    model[at].1 = new_pos;
                }
                _ => {}
            }
        }

        prop_assert_eq!(grid.len(), model.len());
        let rebuilt = GridIndex::build(model.iter().copied(), cell);
        let mut got = Vec::new();
        let mut want = Vec::new();
        for _ in 0..8 {
            let center = random_point(&mut rng);
            let radius = rng.gen_range_f64(10.0, 1_800.0);
            grid.within_into(center, radius, &mut got);
            rebuilt.within_into(center, radius, &mut want);
            // Canonical (cell key, id) order: membership-equal indices
            // answer queries identically, element for element.
            prop_assert_eq!(&got, &want, "divergence at {} r={}", center, radius);

            // And both agree with brute force on membership.
            let mut brute: Vec<u32> = model
                .iter()
                .filter(|(_, p)| p.distance_sq(center) <= radius * radius)
                .map(|&(id, _)| id)
                .collect();
            brute.sort_unstable();
            let mut ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, brute);
        }
    }
}
