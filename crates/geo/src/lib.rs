//! Planar geometry primitives for the MLoRa mobility substrate.
//!
//! Coordinates are metres in a local tangent plane — at London-bus scale
//! (≤ 25 km) the flat-earth error is negligible compared to the 0.5–1 km
//! radio ranges the simulation reasons about.
//!
//! * [`Point`] — a position in metres.
//! * [`BBox`] — an axis-aligned bounding box (the simulation area).
//! * [`Polyline`] — a bus route with O(log n) arc-length interpolation
//!   (O(1) amortised through a segment cursor for monotone queries).
//! * [`GridIndex`] — an incrementally maintained uniform spatial grid
//!   answering "who is within radius r of p?" queries into caller
//!   scratch, the backbone of neighbour discovery.

#![deny(missing_docs)]

mod bbox;
mod grid;
mod point;
mod polyline;

pub use bbox::BBox;
pub use grid::GridIndex;
pub use point::Point;
pub use polyline::{Polyline, PolylineError};
