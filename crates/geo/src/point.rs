//! 2-D points in metres.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A position in metres on the local tangent plane.
///
/// # Example
///
/// ```
/// use mlora_geo::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from easting/northing in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparing.
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Vector length when the point is used as a displacement.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// True when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_pythagorean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(Point::new(3.0, 4.0).norm(), 5.0);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(1.25, -3.0).to_string(), "(1.2, -3.0)");
    }
}
