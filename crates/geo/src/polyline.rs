//! Polylines with arc-length parameterisation.

use serde::{Deserialize, Serialize};

use crate::Point;

/// A piecewise-linear path (a bus route) supporting O(log n) queries of
/// "where am I after travelling `d` metres?".
///
/// # Example
///
/// ```
/// use mlora_geo::{Point, Polyline};
///
/// let route = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(100.0, 0.0),
///     Point::new(100.0, 50.0),
/// ]).unwrap();
/// assert_eq!(route.length(), 150.0);
/// assert_eq!(route.point_at(125.0), Point::new(100.0, 25.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] == 0`.
    cum: Vec<f64>,
}

/// Error returned when constructing a [`Polyline`] from invalid vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolylineError {
    /// Fewer than two vertices were supplied.
    TooFewPoints,
    /// A vertex coordinate was NaN or infinite.
    NonFinitePoint,
}

impl std::fmt::Display for PolylineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolylineError::TooFewPoints => write!(f, "polyline needs at least two points"),
            PolylineError::NonFinitePoint => write!(f, "polyline point is not finite"),
        }
    }
}

impl std::error::Error for PolylineError {}

impl Polyline {
    /// Builds a polyline from its vertices.
    ///
    /// # Errors
    ///
    /// Returns [`PolylineError::TooFewPoints`] with fewer than two vertices
    /// and [`PolylineError::NonFinitePoint`] if any coordinate is NaN or
    /// infinite. Repeated vertices (zero-length segments) are allowed.
    pub fn new(points: Vec<Point>) -> Result<Self, PolylineError> {
        if points.len() < 2 {
            return Err(PolylineError::TooFewPoints);
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(PolylineError::NonFinitePoint);
        }
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for w in points.windows(2) {
            let last = *cum.last().expect("cum is non-empty");
            cum.push(last + w[0].distance(w[1]));
        }
        Ok(Polyline { points, cum })
    }

    /// Total length in metres.
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum is non-empty")
    }

    /// The vertices.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// First vertex.
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// Last vertex.
    pub fn end(&self) -> Point {
        *self.points.last().expect("points is non-empty")
    }

    /// The position after travelling `distance` metres from the start.
    ///
    /// Distances are clamped to `[0, length()]`, so callers can feed raw
    /// `speed × elapsed` products without range checks.
    pub fn point_at(&self, distance: f64) -> Point {
        let d = distance.clamp(0.0, self.length());
        // Find the segment containing d: first index with cum[i] >= d.
        let i = self.cum.partition_point(|&c| c < d);
        self.interpolate(i, d)
    }

    /// [`Polyline::point_at`] with a segment cursor.
    ///
    /// `hint` is an opaque cursor (start it at 0) remembering the segment
    /// the previous query landed on; when consecutive distances are close
    /// — a vehicle advancing along its route — the containing segment is
    /// found by a short local walk instead of a binary search, making
    /// repeated position queries O(1) amortised.
    ///
    /// The returned point is bit-identical to [`Polyline::point_at`] for
    /// any `hint` value (out-of-range hints are clamped).
    pub fn point_at_hinted(&self, distance: f64, hint: &mut u32) -> Point {
        let d = distance.clamp(0.0, self.length());
        // Walk the cursor to the first index with cum[i] >= d — the same
        // index `point_at`'s partition_point finds.
        let mut i = (*hint as usize).min(self.cum.len() - 1);
        while self.cum[i] < d {
            i += 1;
        }
        while i > 0 && self.cum[i - 1] >= d {
            i -= 1;
        }
        *hint = i as u32;
        self.interpolate(i, d)
    }

    /// Interpolates within segment `i` (the first index with
    /// `cum[i] >= d`) — the shared arithmetic behind
    /// [`Polyline::point_at`] and [`Polyline::point_at_hinted`], so the
    /// two stay bit-identical by construction.
    fn interpolate(&self, i: usize, d: f64) -> Point {
        if i == 0 {
            return self.points[0];
        }
        let seg_start = self.cum[i - 1];
        let seg_len = self.cum[i] - seg_start;
        if seg_len <= 0.0 {
            return self.points[i];
        }
        let t = (d - seg_start) / seg_len;
        self.points[i - 1].lerp(self.points[i], t)
    }

    /// The fraction `[0, 1]` of the route covered after `distance` metres.
    pub fn fraction_at(&self, distance: f64) -> f64 {
        if self.length() <= 0.0 {
            return 1.0;
        }
        (distance / self.length()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 50.0),
        ])
        .unwrap()
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_shape().length(), 150.0);
    }

    #[test]
    fn point_at_interpolates() {
        let p = l_shape();
        assert_eq!(p.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(50.0), Point::new(50.0, 0.0));
        assert_eq!(p.point_at(100.0), Point::new(100.0, 0.0));
        assert_eq!(p.point_at(150.0), Point::new(100.0, 50.0));
    }

    #[test]
    fn point_at_clamps() {
        let p = l_shape();
        assert_eq!(p.point_at(-10.0), p.start());
        assert_eq!(p.point_at(1e9), p.end());
    }

    #[test]
    fn zero_length_segments_allowed() {
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.length(), 10.0);
        assert_eq!(p.point_at(5.0), Point::new(5.0, 0.0));
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Polyline::new(vec![Point::ORIGIN]).unwrap_err(),
            PolylineError::TooFewPoints
        );
        assert_eq!(
            Polyline::new(vec![Point::ORIGIN, Point::new(f64::NAN, 0.0)]).unwrap_err(),
            PolylineError::NonFinitePoint
        );
    }

    #[test]
    fn hinted_matches_point_at_bitwise() {
        // A path with a zero-length segment and uneven spacing.
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 37.5),
            Point::new(-4.0, 37.5),
        ])
        .unwrap();
        let mut hint = 0u32;
        // Monotone forward, then jumps backwards, then out-of-range hint.
        let mut ds: Vec<f64> = (0..200).map(|i| f64::from(i) * 0.37).collect();
        ds.extend((0..50).map(|i| 40.0 - f64::from(i)));
        ds.extend([0.0, p.length(), -3.0, 1e9]);
        for d in ds {
            let want = p.point_at(d);
            let got = p.point_at_hinted(d, &mut hint);
            assert_eq!(want.x.to_bits(), got.x.to_bits(), "x differs at d={d}");
            assert_eq!(want.y.to_bits(), got.y.to_bits(), "y differs at d={d}");
        }
        // A stale hint far past the end is clamped.
        let mut bad = 999u32;
        assert_eq!(p.point_at_hinted(5.0, &mut bad), p.point_at(5.0));
        assert!(bad <= 4);
    }

    #[test]
    fn fraction_at() {
        let p = l_shape();
        assert_eq!(p.fraction_at(75.0), 0.5);
        assert_eq!(p.fraction_at(-5.0), 0.0);
        assert_eq!(p.fraction_at(500.0), 1.0);
    }
}
