//! Uniform spatial hash grid for range queries.

use crate::Point;

/// Sentinel marking an empty slot in [`CellTable`]. This value can only
/// collide with the packed key of cell `(2^31 − 1, 2^31 − 1)`, which at
/// any practical cell size sits astronomically far from the origin;
/// [`CellTable::insert`] rejects it outright.
const EMPTY: u64 = u64::MAX;

/// Packs signed cell coordinates into one table key (offset-binary, so
/// nearby cells get distinct, well-mixed keys).
fn pack(cx: i64, cy: i64) -> u64 {
    let x = (cx.wrapping_add(1 << 31)) as u64 & 0xFFFF_FFFF;
    let y = (cy.wrapping_add(1 << 31)) as u64 & 0xFFFF_FFFF;
    (x << 32) | y
}

/// A minimal open-addressing map from packed cell keys to bucket slots.
///
/// Grid queries hit this table up to nine times per event, so it uses a
/// single multiply-shift hash and linear probing over flat arrays
/// instead of the standard library's SipHash map — an order of magnitude
/// cheaper per probe, fully deterministic, and allocation-free once the
/// set of touched cells stops growing. Cells are never removed.
#[derive(Debug, Clone, Default)]
struct CellTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
}

impl CellTable {
    fn new() -> Self {
        CellTable::default()
    }

    #[inline]
    fn hash(key: u64) -> usize {
        // Fibonacci multiply; the high bits are the well-mixed ones.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) & mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a key known to be absent.
    fn insert(&mut self, key: u64, val: u32) {
        assert_ne!(key, EMPTY, "grid cell coordinate overflow");
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) & mask;
        while self.keys[i] != EMPTY {
            debug_assert_ne!(self.keys[i], key, "duplicate cell insert");
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.vals[i] = val;
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; cap];
        let mask = cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = Self::hash(k) & mask;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

/// An incrementally maintained uniform grid index over `(item, position)`
/// pairs.
///
/// The index is mutated in place as entities appear, move and disappear
/// ([`GridIndex::insert`] / [`GridIndex::relocate`] /
/// [`GridIndex::remove`]) instead of being rebuilt from scratch, and
/// range queries can write into caller-provided scratch storage
/// ([`GridIndex::within_into`]) so a steady-state query loop performs no
/// heap allocation. With cell size ≥ query radius, a query inspects at
/// most 9 cells.
///
/// Cells are flat `Vec` buckets addressed through a cell-key table; a
/// bucket keeps its capacity when emptied, so churn (buses entering and
/// leaving cells) stops allocating once the index reaches steady state.
/// Within every bucket items are kept sorted by id, which makes
/// iteration order *canonical*: queries yield items in `(cell key, id)`
/// order, a pure function of the current membership — never of the
/// insertion history. Items must be unique; `remove`/`relocate` locate
/// an item by the position it was last filed under.
///
/// # Example
///
/// ```
/// use mlora_geo::{GridIndex, Point};
///
/// let items = [(1u32, Point::new(0.0, 0.0)), (2, Point::new(30.0, 40.0)),
///              (3, Point::new(500.0, 0.0))];
/// let mut grid = GridIndex::build(items.iter().copied(), 100.0);
/// let mut near: Vec<u32> = grid.within(Point::ORIGIN, 60.0).map(|(id, _)| id).collect();
/// near.sort_unstable();
/// assert_eq!(near, vec![1, 2]);
///
/// // Bus 3 drives into range; no rebuild required.
/// grid.relocate(3, Point::new(500.0, 0.0), Point::new(50.0, 0.0));
/// assert_eq!(grid.within(Point::ORIGIN, 60.0).count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: f64,
    /// Cell key → slot in `buckets`. Keys are never un-mapped: the table
    /// is bounded by the number of distinct cells ever touched.
    slots: CellTable,
    /// Flat bucket storage; each bucket is sorted by item id.
    buckets: Vec<Vec<(T, Point)>>,
    len: usize,
}

impl<T: Copy + Ord> GridIndex<T> {
    /// Creates an empty index with the given cell size.
    ///
    /// For best performance pick `cell_size` close to the typical query
    /// radius.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "bad cell size {cell_size}"
        );
        GridIndex {
            cell: cell_size,
            slots: CellTable::new(),
            buckets: Vec::new(),
            len: 0,
        }
    }

    /// Builds an index from items and positions with the given cell size.
    ///
    /// Equivalent to [`GridIndex::new`] followed by one
    /// [`GridIndex::insert`] per item.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(items: impl IntoIterator<Item = (T, Point)>, cell_size: f64) -> Self {
        let mut grid = GridIndex::new(cell_size);
        for (item, pos) in items {
            grid.insert(item, pos);
        }
        grid
    }

    fn key_for(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket slot for `key`, creating an empty bucket if the cell
    /// has never been touched.
    fn slot_for(&mut self, key: (i64, i64)) -> usize {
        let packed = pack(key.0, key.1);
        if let Some(slot) = self.slots.get(packed) {
            return slot as usize;
        }
        let slot = u32::try_from(self.buckets.len()).expect("grid cell overflow");
        self.buckets.push(Vec::new());
        self.slots.insert(packed, slot);
        slot as usize
    }

    /// Files `item` under the cell containing `pos`.
    pub fn insert(&mut self, item: T, pos: Point) {
        let slot = self.slot_for(Self::key_for(pos, self.cell));
        let bucket = &mut self.buckets[slot];
        let at = bucket.partition_point(|&(other, _)| other < item);
        bucket.insert(at, (item, pos));
        self.len += 1;
    }

    /// Removes `item`, located through `pos` (the position it was last
    /// inserted or relocated at). Returns `true` if the item was found.
    pub fn remove(&mut self, item: T, pos: Point) -> bool {
        let key = Self::key_for(pos, self.cell);
        let Some(slot) = self.slots.get(pack(key.0, key.1)) else {
            return false;
        };
        let bucket = &mut self.buckets[slot as usize];
        let at = bucket.partition_point(|&(other, _)| other < item);
        if bucket.get(at).is_some_and(|&(other, _)| other == item) {
            bucket.remove(at);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Moves `item` from `old_pos` to `new_pos`. When both fall in the
    /// same cell only the stored position is updated. Returns `true` if
    /// the item was found under `old_pos`.
    pub fn relocate(&mut self, item: T, old_pos: Point, new_pos: Point) -> bool {
        let old_key = Self::key_for(old_pos, self.cell);
        let new_key = Self::key_for(new_pos, self.cell);
        if old_key == new_key {
            let Some(slot) = self.slots.get(pack(old_key.0, old_key.1)) else {
                return false;
            };
            let bucket = &mut self.buckets[slot as usize];
            let at = bucket.partition_point(|&(other, _)| other < item);
            match bucket.get_mut(at) {
                Some(entry) if entry.0 == item => {
                    entry.1 = new_pos;
                    true
                }
                _ => false,
            }
        } else {
            if !self.remove(item, old_pos) {
                return false;
            }
            self.insert(item, new_pos);
            true
        }
    }

    /// All items within `radius` metres of `center` (inclusive), in
    /// canonical `(cell key, id)` order.
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = (T, Point)> + '_ {
        let r = radius.max(0.0);
        let r_sq = r * r;
        let lo = Self::key_for(Point::new(center.x - r, center.y - r), self.cell);
        let hi = Self::key_for(Point::new(center.x + r, center.y + r), self.cell);
        (lo.0..=hi.0)
            .flat_map(move |cx| (lo.1..=hi.1).map(move |cy| (cx, cy)))
            .filter_map(move |key| {
                self.slots
                    .get(pack(key.0, key.1))
                    .map(|slot| &self.buckets[slot as usize])
            })
            .flatten()
            .copied()
            .filter(move |(_, p)| p.distance_sq(center) <= r_sq)
    }

    /// Writes all items within `radius` of `center` into `out` (cleared
    /// first), in canonical `(cell key, id)` order.
    ///
    /// This is the allocation-free query path: once `out` has reached its
    /// steady-state capacity, repeated queries perform no heap
    /// allocation. The explicit cell loop (instead of the iterator
    /// chain behind [`GridIndex::within`]) is what the engine's
    /// per-event neighbour query runs.
    pub fn within_into(&self, center: Point, radius: f64, out: &mut Vec<(T, Point)>) {
        out.clear();
        let r = radius.max(0.0);
        let r_sq = r * r;
        let lo = Self::key_for(Point::new(center.x - r, center.y - r), self.cell);
        let hi = Self::key_for(Point::new(center.x + r, center.y + r), self.cell);
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                let Some(slot) = self.slots.get(pack(cx, cy)) else {
                    continue;
                };
                for &(item, p) in &self.buckets[slot as usize] {
                    if p.distance_sq(center) <= r_sq {
                        out.push((item, p));
                    }
                }
            }
        }
    }

    /// Visits every non-empty cell bucket intersecting the axis-aligned
    /// `radius` box around `center`, in canonical cell-key order,
    /// passing each bucket's id-sorted `(item, position)` slice.
    ///
    /// This is the batch counterpart of [`GridIndex::within_into`]: the
    /// caller runs its own distance filter (and any further per-item
    /// checks) over one contiguous slice per cell, so column lookups
    /// and position math stay in cache instead of alternating with
    /// cell-table probes. Filtering each slice with
    /// `distance_sq(center) <= radius²` yields exactly the
    /// [`GridIndex::within_into`] output, in the same order.
    pub fn for_each_bucket_within(
        &self,
        center: Point,
        radius: f64,
        mut f: impl FnMut(&[(T, Point)]),
    ) {
        let r = radius.max(0.0);
        let lo = Self::key_for(Point::new(center.x - r, center.y - r), self.cell);
        let hi = Self::key_for(Point::new(center.x + r, center.y + r), self.cell);
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                let Some(slot) = self.slots.get(pack(cx, cy)) else {
                    continue;
                };
                let bucket = &self.buckets[slot as usize];
                if !bucket.is_empty() {
                    f(bucket);
                }
            }
        }
    }

    /// The nearest item to `p` within `radius`, if any.
    pub fn nearest_within(&self, p: Point, radius: f64) -> Option<(T, Point)> {
        self.within(p, radius).min_by(|a, b| {
            a.1.distance_sq(p)
                .partial_cmp(&b.1.distance_sq(p))
                .expect("distances are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_items_across_cell_borders() {
        // Two points close together but in different grid cells.
        let items = [(1u32, Point::new(99.0, 0.0)), (2, Point::new(101.0, 0.0))];
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        let hits: Vec<u32> = grid
            .within(Point::new(100.0, 0.0), 5.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn radius_is_inclusive_boundary() {
        let items = [(1u32, Point::new(10.0, 0.0))];
        let grid = GridIndex::build(items.iter().copied(), 50.0);
        assert_eq!(grid.within(Point::ORIGIN, 10.0).count(), 1);
        assert_eq!(grid.within(Point::ORIGIN, 9.999).count(), 0);
    }

    #[test]
    fn negative_coordinates() {
        let items = [(1u32, Point::new(-250.0, -250.0))];
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        assert_eq!(grid.within(Point::new(-240.0, -240.0), 20.0).count(), 1);
    }

    #[test]
    fn nearest_within_picks_closest() {
        let items = [
            (1u32, Point::new(10.0, 0.0)),
            (2, Point::new(5.0, 0.0)),
            (3, Point::new(50.0, 0.0)),
        ];
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        assert_eq!(grid.nearest_within(Point::ORIGIN, 20.0).unwrap().0, 2);
        assert_eq!(grid.nearest_within(Point::ORIGIN, 1.0), None);
    }

    #[test]
    fn insert_remove_relocate_roundtrip() {
        let mut grid = GridIndex::new(100.0);
        grid.insert(7u32, Point::new(10.0, 10.0));
        assert_eq!(grid.len(), 1);
        // Same-cell relocate updates the stored position.
        assert!(grid.relocate(7, Point::new(10.0, 10.0), Point::new(20.0, 20.0)));
        assert_eq!(grid.within(Point::new(20.0, 20.0), 1.0).count(), 1);
        // Cross-cell relocate moves buckets.
        assert!(grid.relocate(7, Point::new(20.0, 20.0), Point::new(950.0, 950.0)));
        assert_eq!(grid.within(Point::new(20.0, 20.0), 50.0).count(), 0);
        assert_eq!(grid.within(Point::new(950.0, 950.0), 1.0).count(), 1);
        assert!(grid.remove(7, Point::new(950.0, 950.0)));
        assert!(grid.is_empty());
        // Gone means gone.
        assert!(!grid.remove(7, Point::new(950.0, 950.0)));
        assert!(!grid.relocate(7, Point::new(950.0, 950.0), Point::ORIGIN));
    }

    #[test]
    fn canonical_order_is_membership_pure() {
        // Two construction histories, same membership → identical query
        // output, including order.
        let items = [
            (3u32, Point::new(10.0, 0.0)),
            (1, Point::new(20.0, 0.0)),
            (2, Point::new(130.0, 0.0)),
        ];
        let built = GridIndex::build(items.iter().copied(), 100.0);
        let mut incr = GridIndex::new(100.0);
        incr.insert(2, Point::new(700.0, 0.0));
        incr.insert(1, Point::new(20.0, 0.0));
        incr.insert(3, Point::new(10.0, 0.0));
        incr.relocate(2, Point::new(700.0, 0.0), Point::new(130.0, 0.0));
        let mut a = Vec::new();
        let mut b = Vec::new();
        built.within_into(Point::ORIGIN, 200.0, &mut a);
        incr.within_into(Point::ORIGIN, 200.0, &mut b);
        assert_eq!(a, b);
        // Cell (0,0) holds {1, 3} (id-sorted), cell (1,0) holds {2}.
        assert_eq!(a.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 3, 2]);
    }

    #[test]
    fn bucket_visit_filtered_matches_within_into() {
        use mlora_simcore::SimRng;
        let mut rng = SimRng::new(17);
        let items: Vec<(u32, Point)> = (0..300)
            .map(|i| {
                (
                    i,
                    Point::new(
                        rng.gen_range_f64(0.0, 3000.0),
                        rng.gen_range_f64(0.0, 3000.0),
                    ),
                )
            })
            .collect();
        let grid = GridIndex::build(items.iter().copied(), 400.0);
        for _ in 0..20 {
            let c = Point::new(
                rng.gen_range_f64(0.0, 3000.0),
                rng.gen_range_f64(0.0, 3000.0),
            );
            let r = rng.gen_range_f64(50.0, 900.0);
            let mut want = Vec::new();
            grid.within_into(c, r, &mut want);
            let mut got = Vec::new();
            grid.for_each_bucket_within(c, r, |bucket| {
                got.extend(
                    bucket
                        .iter()
                        .filter(|(_, p)| p.distance_sq(c) <= r * r)
                        .copied(),
                );
            });
            assert_eq!(got, want);
        }
    }

    #[test]
    fn within_into_reuses_capacity() {
        let items: Vec<(u32, Point)> = (0..64)
            .map(|i| (i, Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        let mut out = Vec::new();
        grid.within_into(Point::ORIGIN, 300.0, &mut out);
        let cap = out.capacity();
        for _ in 0..10 {
            grid.within_into(Point::ORIGIN, 300.0, &mut out);
        }
        assert_eq!(out.capacity(), cap, "steady-state queries must not grow");
        assert_eq!(out.len(), 31);
    }

    #[test]
    fn brute_force_agreement() {
        use mlora_simcore::SimRng;
        let mut rng = SimRng::new(42);
        let items: Vec<(u32, Point)> = (0..500)
            .map(|i| {
                (
                    i,
                    Point::new(
                        rng.gen_range_f64(0.0, 5000.0),
                        rng.gen_range_f64(0.0, 5000.0),
                    ),
                )
            })
            .collect();
        let grid = GridIndex::build(items.iter().copied(), 500.0);
        for _ in 0..50 {
            let c = Point::new(
                rng.gen_range_f64(0.0, 5000.0),
                rng.gen_range_f64(0.0, 5000.0),
            );
            let r = rng.gen_range_f64(10.0, 1500.0);
            let mut got: Vec<u32> = grid.within(c, r).map(|(i, _)| i).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = items
                .iter()
                .filter(|(_, p)| p.distance_sq(c) <= r * r)
                .map(|(i, _)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_index() {
        let grid: GridIndex<u32> = GridIndex::build(std::iter::empty(), 10.0);
        assert!(grid.is_empty());
        assert_eq!(grid.within(Point::ORIGIN, 100.0).count(), 0);
    }
}
