//! Uniform spatial hash grid for range queries.

use std::collections::HashMap;

use crate::Point;

/// A uniform grid index over `(item, position)` pairs.
///
/// Built once per query window from the currently active nodes, then
/// queried with [`GridIndex::within`] to find everything inside a radius.
/// With cell size ≥ query radius, a query inspects at most 9 cells.
///
/// # Example
///
/// ```
/// use mlora_geo::{GridIndex, Point};
///
/// let items = [(1u32, Point::new(0.0, 0.0)), (2, Point::new(30.0, 40.0)),
///              (3, Point::new(500.0, 0.0))];
/// let grid = GridIndex::build(items.iter().copied(), 100.0);
/// let mut near: Vec<u32> = grid.within(Point::ORIGIN, 60.0).map(|(id, _)| id).collect();
/// near.sort_unstable();
/// assert_eq!(near, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<(T, Point)>>,
    len: usize,
}

impl<T: Copy> GridIndex<T> {
    /// Builds an index from items and positions with the given cell size.
    ///
    /// For best performance pick `cell_size` close to the typical query
    /// radius.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(items: impl IntoIterator<Item = (T, Point)>, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "bad cell size {cell_size}"
        );
        let mut cells: HashMap<(i64, i64), Vec<(T, Point)>> = HashMap::new();
        let mut len = 0;
        for (item, pos) in items {
            let key = Self::key_for(pos, cell_size);
            cells.entry(key).or_default().push((item, pos));
            len += 1;
        }
        GridIndex {
            cell: cell_size,
            cells,
            len,
        }
    }

    fn key_for(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All items strictly within `radius` metres of `center` (inclusive).
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = (T, Point)> + '_ {
        let r = radius.max(0.0);
        let r_sq = r * r;
        let lo = Self::key_for(Point::new(center.x - r, center.y - r), self.cell);
        let hi = Self::key_for(Point::new(center.x + r, center.y + r), self.cell);
        (lo.0..=hi.0)
            .flat_map(move |cx| (lo.1..=hi.1).map(move |cy| (cx, cy)))
            .filter_map(move |key| self.cells.get(&key))
            .flatten()
            .copied()
            .filter(move |(_, p)| p.distance_sq(center) <= r_sq)
    }

    /// The nearest item to `p` within `radius`, if any.
    pub fn nearest_within(&self, p: Point, radius: f64) -> Option<(T, Point)> {
        self.within(p, radius).min_by(|a, b| {
            a.1.distance_sq(p)
                .partial_cmp(&b.1.distance_sq(p))
                .expect("distances are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_items_across_cell_borders() {
        // Two points close together but in different grid cells.
        let items = [(1u32, Point::new(99.0, 0.0)), (2, Point::new(101.0, 0.0))];
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        let hits: Vec<u32> = grid
            .within(Point::new(100.0, 0.0), 5.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn radius_is_inclusive_boundary() {
        let items = [(1u32, Point::new(10.0, 0.0))];
        let grid = GridIndex::build(items.iter().copied(), 50.0);
        assert_eq!(grid.within(Point::ORIGIN, 10.0).count(), 1);
        assert_eq!(grid.within(Point::ORIGIN, 9.999).count(), 0);
    }

    #[test]
    fn negative_coordinates() {
        let items = [(1u32, Point::new(-250.0, -250.0))];
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        assert_eq!(grid.within(Point::new(-240.0, -240.0), 20.0).count(), 1);
    }

    #[test]
    fn nearest_within_picks_closest() {
        let items = [
            (1u32, Point::new(10.0, 0.0)),
            (2, Point::new(5.0, 0.0)),
            (3, Point::new(50.0, 0.0)),
        ];
        let grid = GridIndex::build(items.iter().copied(), 100.0);
        assert_eq!(grid.nearest_within(Point::ORIGIN, 20.0).unwrap().0, 2);
        assert_eq!(grid.nearest_within(Point::ORIGIN, 1.0), None);
    }

    #[test]
    fn brute_force_agreement() {
        use mlora_simcore::SimRng;
        let mut rng = SimRng::new(42);
        let items: Vec<(u32, Point)> = (0..500)
            .map(|i| {
                (
                    i,
                    Point::new(
                        rng.gen_range_f64(0.0, 5000.0),
                        rng.gen_range_f64(0.0, 5000.0),
                    ),
                )
            })
            .collect();
        let grid = GridIndex::build(items.iter().copied(), 500.0);
        for _ in 0..50 {
            let c = Point::new(
                rng.gen_range_f64(0.0, 5000.0),
                rng.gen_range_f64(0.0, 5000.0),
            );
            let r = rng.gen_range_f64(10.0, 1500.0);
            let mut got: Vec<u32> = grid.within(c, r).map(|(i, _)| i).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = items
                .iter()
                .filter(|(_, p)| p.distance_sq(c) <= r * r)
                .map(|(i, _)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_index() {
        let grid: GridIndex<u32> = GridIndex::build(std::iter::empty(), 10.0);
        assert!(grid.is_empty());
        assert_eq!(grid.within(Point::ORIGIN, 100.0).count(), 0);
    }
}
