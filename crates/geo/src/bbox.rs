//! Axis-aligned bounding boxes.

use serde::{Deserialize, Serialize};

use crate::Point;

/// An axis-aligned rectangle, used for the simulation area.
///
/// # Example
///
/// ```
/// use mlora_geo::{BBox, Point};
///
/// // The paper's 600 km² London area as a square.
/// let area = BBox::square(Point::ORIGIN, 24_495.0);
/// assert!(area.contains(Point::new(10_000.0, 20_000.0)));
/// assert!((area.area() / 1e6 - 600.0).abs() < 1.0); // ~600 km²
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a box from two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if any corner coordinate is not finite or if `min` exceeds
    /// `max` on either axis.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(min.is_finite() && max.is_finite(), "non-finite bbox corner");
        assert!(
            min.x <= max.x && min.y <= max.y,
            "inverted bbox {min} .. {max}"
        );
        BBox { min, max }
    }

    /// Creates a square with the given lower-left `origin` and side length.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative or not finite.
    pub fn square(origin: Point, side: f64) -> Self {
        assert!(side.is_finite() && side >= 0.0, "bad side {side}");
        BBox::new(origin, Point::new(origin.x + side, origin.y + side))
    }

    /// The lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// The upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width along x, in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y, in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The centre point.
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Shrinks the box by `margin` metres on every side.
    ///
    /// # Panics
    ///
    /// Panics if the margin would invert the box.
    pub fn shrink(&self, margin: f64) -> BBox {
        BBox::new(
            Point::new(self.min.x + margin, self.min.y + margin),
            Point::new(self.max.x - margin, self.max.y - margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let b = BBox::new(Point::new(1.0, 2.0), Point::new(4.0, 6.0));
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn containment_and_clamp() {
        let b = BBox::square(Point::ORIGIN, 10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(!b.contains(Point::new(10.1, 5.0)));
        assert_eq!(b.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
    }

    #[test]
    fn shrink() {
        let b = BBox::square(Point::ORIGIN, 10.0).shrink(1.0);
        assert_eq!(b.min(), Point::new(1.0, 1.0));
        assert_eq!(b.max(), Point::new(9.0, 9.0));
    }

    #[test]
    #[should_panic(expected = "inverted bbox")]
    fn inverted_rejected() {
        let _ = BBox::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }
}
