//! # mlora — contact-aware opportunistic forwarding for mobile LoRaWAN
//!
//! A full reproduction of *"Contact-Aware Opportunistic Data Forwarding
//! in Disconnected LoRaWAN Mobile Networks"* (Chen et al., ICDCS 2020):
//! the RCA-ETX routing metric, the ROBC backpressure scheme, the two new
//! device classes, and the complete simulation stack (mobility, PHY, MAC,
//! network engine) used to evaluate them.
//!
//! This facade crate re-exports each layer under a stable path:
//!
//! * [`core`] — RCA-ETX, ROBC, forwarding schemes (the paper's §IV–§V).
//! * [`sim`] — the integration simulator and experiment runners (§VII).
//! * [`mobility`] — the synthetic London bus network substrate.
//! * [`mac`] — LoRaWAN MAC: classes, duty cycle, queues, frames (§III, §VI).
//! * [`phy`] — LoRa airtime, path loss, capacity, collisions.
//! * [`geo`] / [`simcore`] — geometry and discrete-event foundations.
//!
//! # Quick start
//!
//! Run one urban ROBC simulation and inspect the headline metrics:
//!
//! ```
//! use mlora::core::Scheme;
//! use mlora::sim::{Environment, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = SimConfig::smoke_test(Scheme::Robc, Environment::Urban).run(42)?;
//! println!(
//!     "delivered {} of {} messages, mean delay {:.1}s, {:.1} hops",
//!     report.delivered,
//!     report.generated,
//!     report.mean_delay_s(),
//!     report.mean_hops()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for paper-scale scenarios and `crates/bench` for the
//! harness that regenerates every figure of the evaluation.

#![deny(missing_docs)]

pub use mlora_core as core;
pub use mlora_geo as geo;
pub use mlora_mac as mac;
pub use mlora_mobility as mobility;
pub use mlora_phy as phy;
pub use mlora_sim as sim;
pub use mlora_simcore as simcore;
