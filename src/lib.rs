//! # mlora — contact-aware opportunistic forwarding for mobile LoRaWAN
//!
//! A full reproduction of *"Contact-Aware Opportunistic Data Forwarding
//! in Disconnected LoRaWAN Mobile Networks"* (Chen et al., ICDCS 2020):
//! the RCA-ETX routing metric, the ROBC backpressure scheme, the two new
//! device classes, and the complete simulation stack (mobility, PHY, MAC,
//! network engine) used to evaluate them.
//!
//! This facade crate re-exports each layer under a stable path:
//!
//! * [`core`] — RCA-ETX, ROBC, forwarding schemes (the paper's §IV–§V).
//! * [`sim`] — the integration simulator and experiment runners (§VII).
//! * [`mobility`] — the synthetic London bus network substrate and the
//!   metro-scale world generator.
//! * [`scenario_io`] — the streaming `.mlsc` binary scenario container.
//! * [`mac`] — LoRaWAN MAC: classes, duty cycle, queues, frames (§III, §VI).
//! * [`phy`] — LoRa airtime, path loss, capacity, collisions.
//! * [`geo`] / [`simcore`] — geometry and discrete-event foundations.
//!
//! # Quick start
//!
//! Build an urban ROBC scenario with the fluent builder and inspect the
//! headline metrics:
//!
//! ```
//! use mlora::core::Scheme;
//! use mlora::sim::Scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Scenario::urban()
//!     .smoke() // the small, fast test preset; drop for paper scale
//!     .scheme(Scheme::Robc)
//!     .run(42)?;
//! println!(
//!     "delivered {} of {} messages, mean delay {:.1}s, {:.1} hops",
//!     report.delivered,
//!     report.generated,
//!     report.mean_delay_s(),
//!     report.mean_hops()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Sweeps
//!
//! Evaluation-style grids are declarative: an
//! [`ExperimentPlan`](sim::ExperimentPlan) names the axes, and a
//! [`Runner`](sim::Runner) fans the cells out across worker threads,
//! replicates each over seeds, and aggregates means and confidence
//! intervals:
//!
//! ```
//! use mlora::core::Scheme;
//! use mlora::sim::{ExperimentPlan, Runner, Scenario};
//! use mlora::simcore::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = Scenario::urban()
//!     .smoke()
//!     .duration(SimDuration::from_mins(40))
//!     .build()?;
//! let plan = ExperimentPlan::new(base)
//!     .schemes([Scheme::NoRouting, Scheme::Robc])
//!     .gateway_counts([4, 9])
//!     .replicate(2);
//! for cell in Runner::new().run(&plan)? {
//!     let (lo, hi) = cell.report.ci95(|r| r.delivery_ratio());
//!     println!("{:?}/{} gws: delivery in [{lo:.2}, {hi:.2}]",
//!              cell.key.scheme, cell.key.gateways);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for paper-scale scenarios and `crates/bench` for the
//! harness that regenerates every figure of the evaluation.

#![deny(missing_docs)]

pub use mlora_core as core;
pub use mlora_geo as geo;
pub use mlora_mac as mac;
pub use mlora_mobility as mobility;
pub use mlora_phy as phy;
pub use mlora_scenario_io as scenario_io;
pub use mlora_sim as sim;
pub use mlora_simcore as simcore;
