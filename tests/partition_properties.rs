//! Property-based tests over the spatially partitioned engine: the
//! partition geometry (tile assignment, shard bands, halo membership)
//! matches brute-force recomputation for arbitrary worlds, and full
//! engine runs — heterogeneous traffic and mid-run disruptions
//! included — are bit-identical across shard counts 1, 2 and 4.

use mlora::geo::{BBox, Point};
use mlora::mobility::DiurnalProfile;
use mlora::sim::{
    ArrivalProcess, BusWithdrawal, DisruptionPlan, GatewayOutage, NoiseBurst, Partition,
    PayloadModel, Priority, Scenario, SimConfig, TrafficModel, TrafficProfile,
};
use mlora::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// Gateways deployed by the smoke preset every engine property runs
/// against (its 3×3 grid).
const GATEWAYS: usize = 9;

/// Point-to-rectangle distance, the brute-force primitive the partition
/// accessors are checked against.
fn rect_distance(lo: Point, hi: Point, p: Point) -> f64 {
    let dx = (lo.x - p.x).max(p.x - hi.x).max(0.0);
    let dy = (lo.y - p.y).max(p.y - hi.y).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

proptest! {
    /// Tile assignment is the exact floor-and-clamp function of
    /// position: for arbitrary partition shapes and probe points
    /// (inside and outside the area), `tile_of` matches a brute-force
    /// scan for the nearest containing tile rectangle, every tile's
    /// owning shard is a contiguous row band, and `region_distance` /
    /// `shard_in_range` agree with the minimum over the shard's owned
    /// tile rectangles.
    #[test]
    fn partition_geometry_matches_brute_force(
        side in 2_000.0f64..40_000.0,
        shards in 1usize..7,
        d2d in 100.0f64..1_500.0,
        gw in 100.0f64..3_000.0,
        speed in 3.0f64..30.0,
        airtime_ms in 50u64..3_000,
        xs in proptest::collection::vec(-0.2f64..1.2, 8..9),
        ys in proptest::collection::vec(-0.2f64..1.2, 8..9),
        radius in 0.0f64..5_000.0,
    ) {
        let area = BBox::square(Point::ORIGIN, side);
        let part = Partition::new(
            area,
            shards,
            d2d,
            gw,
            speed,
            SimDuration::from_millis(airtime_ms),
        );
        prop_assert_eq!(part.num_shards(), shards);
        prop_assert_eq!(part.num_tiles(), part.cols() * part.rows());
        prop_assert!(part.tile_m() >= 200.0);
        // Halos always cover their radio range plus positive slack.
        prop_assert!(part.device_halo_m() > d2d);
        prop_assert!(part.flight_halo_m() >= 2.0 * d2d.max(gw));
        prop_assert!(part.query_slack_m() > 0.0);

        // Shard bands: row-monotone, contiguous, and jointly exhaustive.
        let mut prev_shard = 0;
        for row in 0..part.rows() {
            let s = part.shard_of_tile(row * part.cols());
            prop_assert!(s >= prev_shard, "shard bands out of order");
            prop_assert!(s < shards);
            for col in 1..part.cols() {
                prop_assert_eq!(part.shard_of_tile(row * part.cols() + col), s);
            }
            prev_shard = s;
        }

        for (&fx, &fy) in xs.iter().zip(&ys) {
            let p = Point::new(fx * side, fy * side);
            // Brute-force owner: the tile whose rectangle is nearest
            // (distance zero when the point is inside the area).
            let t = part.tile_of(p);
            prop_assert!(t < part.num_tiles());
            let (lo, hi) = part.tile_rect(t);
            let own = rect_distance(lo, hi, p);
            for other in 0..part.num_tiles() {
                let (olo, ohi) = part.tile_rect(other);
                prop_assert!(
                    own <= rect_distance(olo, ohi, p) + 1e-9,
                    "tile {t} is not nearest to {p:?} (beaten by {other})"
                );
            }
            prop_assert_eq!(part.shard_of(p), part.shard_of_tile(t));
            // Halo membership: region_distance equals the minimum over
            // the shard's owned tile rectangles (infinite for bandless
            // shards), and shard_in_range is exactly the disc test.
            for s in 0..shards {
                let brute = (0..part.num_tiles())
                    .filter(|&t| part.shard_of_tile(t) == s)
                    .map(|t| {
                        let (lo, hi) = part.tile_rect(t);
                        rect_distance(lo, hi, p)
                    })
                    .fold(f64::INFINITY, f64::min);
                let got = part.region_distance(s, p);
                if brute.is_finite() {
                    prop_assert!(
                        (got - brute).abs() < 1e-9,
                        "shard {s} point {p:?}: {got} vs brute {brute}"
                    );
                } else {
                    prop_assert!(got.is_infinite());
                }
                prop_assert_eq!(part.shard_in_range(s, p, radius), got <= radius);
            }
        }
    }

    /// For arbitrary smoke scenarios — a generated traffic mix plus a
    /// generated disruption plan — the partitioned engine at 2 and 4
    /// shards reproduces the serial run bit for bit, per-profile
    /// breakdowns and resilience counters included.
    #[test]
    fn sharded_runs_are_bit_identical_to_serial(
        seed in 0u64..1_000_000,
        kinds in proptest::collection::vec(0u32..5, 0..3),
        intervals in proptest::collection::vec(30u64..600, 3..4),
        payload_los in proptest::collection::vec(1usize..100, 3..4),
        outage_gws in proptest::collection::vec(0usize..32, 0..3),
        outage_starts in proptest::collection::vec(0u64..1_800, 3..4),
        outage_durs in proptest::collection::vec(0u64..1_500, 3..4),
        withdraw_at in 0u64..1_800,
        withdraw_frac in 0.05f64..0.9,
        withdraw in proptest::bool::ANY,
        burst in proptest::bool::ANY,
        burst_start in 0u64..1_800,
    ) {
        let profiles: Vec<TrafficProfile> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let interval = SimDuration::from_secs(intervals[i]);
                let arrivals = match kind % 4 {
                    0 => ArrivalProcess::Periodic { interval },
                    1 => ArrivalProcess::Jittered { interval, jitter: 0.3 },
                    2 => ArrivalProcess::Poisson { mean_interval: interval },
                    _ => ArrivalProcess::Diurnal {
                        base_interval: interval,
                        profile: DiurnalProfile::london_buses(),
                    },
                };
                TrafficProfile::new(
                    format!("p{i}"),
                    arrivals,
                    PayloadModel::Fixed { bytes: payload_los[i] },
                )
                .priority(Priority::ALL[i % 3])
            })
            .collect();
        let plan = DisruptionPlan {
            outages: outage_gws
                .iter()
                .zip(&outage_starts)
                .zip(&outage_durs)
                .map(|((&gateway, &start), &dur)| GatewayOutage {
                    gateway: gateway % GATEWAYS,
                    start: SimTime::from_secs(start),
                    duration: (dur > 0).then(|| SimDuration::from_secs(dur)),
                })
                .collect(),
            withdrawals: withdraw
                .then(|| BusWithdrawal {
                    at: SimTime::from_secs(withdraw_at),
                    fraction: withdraw_frac,
                })
                .into_iter()
                .collect(),
            noise_bursts: burst
                .then(|| NoiseBurst {
                    center: Point::new(5_000.0, 5_000.0),
                    radius_m: 4_000.0,
                    start: SimTime::from_secs(burst_start),
                    duration: Some(SimDuration::from_mins(10)),
                    extra_loss_db: 10.0,
                })
                .into_iter()
                .collect(),
        };
        let config = Scenario::urban()
            .smoke()
            .duration(SimDuration::from_mins(30))
            .traffic(TrafficModel::mix(profiles))
            .disruptions(plan)
            .build()
            .expect("generated scenario is valid");
        let serial = config.run(seed).expect("serial run");
        for shards in [2usize, 4] {
            let mut cfg: SimConfig = config.clone();
            cfg.shards = shards;
            let sharded = cfg.run(seed).expect("sharded run");
            prop_assert_eq!(
                &sharded,
                &serial,
                "{} shards diverged from serial at seed {}",
                shards,
                seed
            );
        }
    }
}
