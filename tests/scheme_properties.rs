//! Property-based tests over the paper's core invariants, driven by
//! proptest through the public facade.

use mlora::core::{
    greedy_forward_rule, link_rca_etx, robc_transfer_amount, robc_weight, Beacon, ContactTracker,
    Ewma, ForwardDecision, Rgq, RoutingConfig, RoutingState, Scheme, RCA_ETX_CEILING,
};
use mlora::mac::{queue_based_window_fraction, AppMessage, DataQueue};
use mlora::phy::{duty_cycle_wait, time_on_air, CapacityModel, PhyParams};
use mlora::simcore::{MessageId, NodeId, SimTime};
use proptest::prelude::*;

proptest! {
    /// Eq. 4: the EWMA always lies within the running min/max envelope of
    /// its inputs.
    #[test]
    fn ewma_stays_in_input_envelope(
        alpha in 0.01f64..=1.0,
        xs in proptest::collection::vec(0.0f64..1e6, 1..64),
    ) {
        let mut e = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            lo = lo.min(x);
            hi = hi.max(x);
            let v = e.push(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "ewma {v} left [{lo}, {hi}]");
        }
    }

    /// Eq. 5–6: the link metric is monotone non-increasing in RSSI and
    /// always positive and bounded.
    #[test]
    fn link_metric_monotone_bounded(
        rssi_a in -150.0f64..-40.0,
        rssi_b in -150.0f64..-40.0,
        bits in 8.0f64..4096.0,
    ) {
        let cap = CapacityModel::paper_default();
        let (lo, hi) = if rssi_a < rssi_b { (rssi_a, rssi_b) } else { (rssi_b, rssi_a) };
        let m_lo = link_rca_etx(lo, &cap, bits);
        let m_hi = link_rca_etx(hi, &cap, bits);
        prop_assert!(m_hi <= m_lo);
        prop_assert!(m_hi > 0.0 && m_lo <= RCA_ETX_CEILING);
    }

    /// Eq. 1 is irreflexive in a symmetric situation: two devices with
    /// identical metrics never forward to each other (no trivial loops).
    #[test]
    fn greedy_rule_no_symmetric_loop(metric in 0.0f64..1e6, link in 0.0f64..1e5) {
        prop_assert!(!greedy_forward_rule(metric, metric, link));
    }

    /// Eq. 10 is antisymmetric: ω_{x,y} = −ω_{y,x}.
    #[test]
    fn robc_weight_antisymmetric(
        qx in 0usize..500,
        qy in 0usize..500,
        phi_x in 1e-6f64..1.0,
        phi_y in 1e-6f64..1.0,
    ) {
        let w_xy = robc_weight(qx, phi_x, qy, phi_y);
        let w_yx = robc_weight(qy, phi_y, qx, phi_x);
        prop_assert!((w_xy + w_yx).abs() < 1e-6 * (1.0 + w_xy.abs()));
    }

    /// δ never exceeds the donor queue and moving δ kills the pressure:
    /// after the transfer the reverse direction does not want to move data
    /// back (the anti-ping-pong property §V.B.2 relies on).
    #[test]
    fn robc_transfer_settles(
        qx in 0usize..500,
        qy in 0usize..500,
        phi_x in 1e-3f64..1.0,
        phi_y in 1e-3f64..1.0,
    ) {
        let delta = robc_transfer_amount(qx, phi_x, qy, phi_y);
        prop_assert!(delta <= qx);
        if delta > 0 {
            let back = robc_transfer_amount(qy + delta, phi_y, qx - delta, phi_x);
            // The receiver may still be below equilibrium, but it must not
            // want to return more than it just accepted.
            prop_assert!(back <= delta, "ping-pong: {back} > {delta}");
        }
    }

    /// RGQ is always within its stability bounds for arbitrary metrics.
    #[test]
    fn rgq_bounded(rca in proptest::num::f64::ANY) {
        let rgq = Rgq::paper_default();
        let phi = rgq.phi(rca);
        prop_assert!(phi >= rgq.phi_min() && phi <= rgq.phi_max());
    }

    /// Eq. 11: the receive-window fraction is always in [0, 1] and
    /// monotone in queue length.
    #[test]
    fn window_fraction_bounded_monotone(
        phi in 1e-6f64..1.0,
        q1 in 0usize..256,
        q2 in 0usize..256,
        qmax in 1usize..256,
    ) {
        let g1 = queue_based_window_fraction(phi, 1.0, q1.min(qmax), qmax);
        let g2 = queue_based_window_fraction(phi, 1.0, q2.min(qmax), qmax);
        prop_assert!((0.0..=1.0).contains(&g1));
        if q1.min(qmax) <= q2.min(qmax) {
            prop_assert!(g1 <= g2);
        }
    }

    /// The RPST of Eq. 3 never decreases while a device stays out of
    /// contact (time only makes things worse), and is capped.
    #[test]
    fn rpst_monotone_while_disconnected(
        gap1 in 0u64..100_000,
        gap2 in 0u64..100_000,
        cap in 1.0f64..10_000.0,
    ) {
        let mut ct = ContactTracker::new();
        ct.record_success(SimTime::from_secs(100), cap);
        ct.record_failure(SimTime::from_secs(200));
        let (lo, hi) = if gap1 < gap2 { (gap1, gap2) } else { (gap2, gap1) };
        let r_lo = ct.rpst(SimTime::from_secs(200 + lo), 0.0, 2040.0);
        let r_hi = ct.rpst(SimTime::from_secs(200 + hi), 0.0, 2040.0);
        prop_assert!(r_lo <= r_hi);
        prop_assert!(r_hi <= RCA_ETX_CEILING);
    }

    /// LoRa airtime is monotone in payload and the duty-cycle wait scales
    /// with it.
    #[test]
    fn airtime_and_duty_monotone(a in 0usize..=255, b in 0usize..=255) {
        let phy = PhyParams::paper_default();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let t_lo = time_on_air(lo, &phy);
        let t_hi = time_on_air(hi, &phy);
        prop_assert!(t_lo <= t_hi);
        prop_assert!(duty_cycle_wait(t_lo, 0.01) <= duty_cycle_wait(t_hi, 0.01));
    }

    /// The data queue never exceeds capacity, drops exactly the overflow,
    /// and preserves FIFO order of survivors.
    #[test]
    fn queue_capacity_and_fifo(cap in 1usize..64, n in 0u64..200) {
        let mut q = DataQueue::new(cap);
        for i in 0..n {
            q.push(AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO));
        }
        prop_assert!(q.len() <= cap);
        prop_assert_eq!(q.len() as u64 + q.dropped(), n);
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted, "FIFO order violated");
    }

    /// A ROBC device with an empty queue never volunteers to forward, for
    /// any beacon it might overhear.
    #[test]
    fn empty_queue_never_forwards(
        rca_y in 0.0f64..1e7,
        q_y in 0usize..500,
        rssi in -150.0f64..-40.0,
    ) {
        let mut state = RoutingState::new(RoutingConfig::paper_default(Scheme::Robc));
        let beacon = Beacon { sender: NodeId::new(1), rca_etx: rca_y, queue_len: q_y };
        let d = state.decide(SimTime::from_secs(1000), 0.0, 0, &beacon, rssi);
        prop_assert_eq!(d, ForwardDecision::Keep);
    }

    /// Forward decisions never move more than the frame bundle limit.
    #[test]
    fn forward_count_bounded(
        queue_len in 0usize..500,
        rca_y in 0.0f64..1e7,
        q_y in 0usize..500,
        rssi in -130.0f64..-40.0,
        scheme_robc in proptest::bool::ANY,
    ) {
        let scheme = if scheme_robc { Scheme::Robc } else { Scheme::RcaEtx };
        let mut state = RoutingState::new(RoutingConfig::paper_default(scheme));
        // A weak contact history makes the device eager to forward.
        state.on_sink_slot(SimTime::from_secs(180), Some(100.0), 0.0);
        state.on_sink_slot(SimTime::from_secs(360), None, 0.0);
        let beacon = Beacon { sender: NodeId::new(1), rca_etx: rca_y, queue_len: q_y };
        if let ForwardDecision::Forward { count, .. } =
            state.decide(SimTime::from_secs(4000), 0.0, queue_len, &beacon, rssi)
        {
            prop_assert!(count <= mlora::mac::MAX_BUNDLE);
            prop_assert!(count <= queue_len);
        }
    }
}
