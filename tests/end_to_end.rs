//! Cross-crate integration tests: the full stack from mobility to server
//! delivery, exercised through the public facade.

use mlora::core::Scheme;
use mlora::sim::{Environment, SimConfig};
use mlora::simcore::SimDuration;

fn smoke(scheme: Scheme, env: Environment, seed: u64) -> mlora::sim::SimReport {
    SimConfig::smoke_test(scheme, env)
        .run(seed)
        .expect("valid config")
}

#[test]
fn full_stack_delivers_messages() {
    for scheme in Scheme::ALL {
        for env in [Environment::Urban, Environment::Rural] {
            let r = smoke(scheme, env, 99);
            assert!(r.generated > 0, "{scheme}/{env}: nothing generated");
            assert!(r.delivered > 0, "{scheme}/{env}: nothing delivered");
            assert!(
                r.delivered <= r.generated,
                "{scheme}/{env}: delivered more unique messages than generated"
            );
        }
    }
}

#[test]
fn same_seed_reproduces_identical_reports() {
    for scheme in Scheme::ALL {
        let a = smoke(scheme, Environment::Urban, 7);
        let b = smoke(scheme, Environment::Urban, 7);
        assert_eq!(a, b, "{scheme}: non-deterministic report");
    }
}

#[test]
fn baseline_never_forwards() {
    let r = smoke(Scheme::NoRouting, Environment::Rural, 5);
    assert_eq!(r.handover_frames, 0);
    assert_eq!(r.handover_messages, 0);
    assert_eq!(r.mean_hops(), 1.0);
}

#[test]
fn forwarding_schemes_do_forward_in_rural() {
    // The 1 km rural d2d range guarantees contact opportunities even in
    // the small smoke network.
    for scheme in [Scheme::RcaEtx, Scheme::Robc] {
        let r = smoke(scheme, Environment::Rural, 5);
        assert!(r.handover_frames > 0, "{scheme}: no handovers");
        assert!(r.mean_hops() > 1.0, "{scheme}: hops stuck at 1");
    }
}

#[test]
fn delays_are_physical() {
    for scheme in Scheme::ALL {
        let r = smoke(scheme, Environment::Urban, 11);
        // No message can be delivered before the shortest possible airtime
        // nor after the 2 h horizon.
        assert!(r.mean_delay_s() > 0.0, "{scheme}: zero delay");
        assert!(r.mean_delay_s() < 7_200.0, "{scheme}: delay beyond horizon");
    }
}

#[test]
fn more_gateways_help_the_baseline() {
    let mut sparse = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
    sparse.num_gateways = 2;
    let mut dense = sparse.clone();
    dense.num_gateways = 16;
    let r_sparse = sparse.run(3).unwrap();
    let r_dense = dense.run(3).unwrap();
    assert!(
        r_dense.delivered > r_sparse.delivered,
        "denser gateways should deliver more: {} vs {}",
        r_dense.delivered,
        r_sparse.delivered
    );
    assert!(
        r_dense.mean_delay_s() < r_sparse.mean_delay_s(),
        "denser gateways should deliver sooner"
    );
}

#[test]
fn throughput_series_sums_to_delivered() {
    for scheme in Scheme::ALL {
        let r = smoke(scheme, Environment::Urban, 13);
        assert_eq!(r.throughput_series.total(), r.delivered);
    }
}

#[test]
fn longer_horizon_generates_more() {
    let short = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
    let mut long = short.clone();
    long.horizon = SimDuration::from_hours(4);
    long.network.horizon = long.horizon;
    let r_short = short.run(21).unwrap();
    let r_long = long.run(21).unwrap();
    assert!(r_long.generated > r_short.generated);
}

#[test]
fn message_accounting_is_consistent() {
    for scheme in Scheme::ALL {
        let r = smoke(scheme, Environment::Rural, 17);
        // Every generated message is delivered, stranded in a queue, or
        // dropped by overflow (sets may overlap via duplication, so >=).
        assert!(
            r.delivered + r.stranded + r.queue_drops >= r.generated,
            "{scheme}: accounting hole"
        );
        // Bundle-weighted sends cannot be fewer than frames.
        assert!(r.messages_sent >= r.frames_sent);
    }
}
