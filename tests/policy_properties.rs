//! Property-based proof that the pluggable forwarding-policy layer is a
//! pure refactor: every built-in [`Scheme`] run through a trait-object
//! [`PolicySpec`] is bit-identical to the enum-constructed path, at both
//! the per-decision level and the full-engine level, across arbitrary
//! smoke-scale configurations.

use mlora::core::{Beacon, PolicySpec, RoutingConfig, RoutingState, Scheme};
use mlora::sim::{Environment, Scenario, SimReport};
use mlora::simcore::{NodeId, SimDuration, SimTime};
use proptest::prelude::*;

/// Maps a flat draw onto the four built-in schemes.
fn scheme_of(index: u32) -> Scheme {
    Scheme::WITH_CA_ETX[index as usize % Scheme::WITH_CA_ETX.len()]
}

/// The float fields of a report, by IEEE-754 bit pattern — `assert_eq!`
/// on two reports compares floats by value, this pins them by bits.
fn float_bits(r: &SimReport) -> [u64; 6] {
    [
        r.mean_delay_s().to_bits(),
        r.delay_std_error_s().to_bits(),
        r.mean_hops().to_bits(),
        r.max_hops().to_bits(),
        r.total_energy_mj.to_bits(),
        r.total_active_s.to_bits(),
    ]
}

proptest! {
    /// Per-decision equivalence: an enum-constructed `RoutingState` and
    /// one built from the scheme's boxed policy see the same contact
    /// history and produce identical beacon metrics (by bit pattern) and
    /// forwarding decisions for any overheard beacon.
    #[test]
    fn decisions_bit_identical_across_construction_paths(
        scheme_idx in 0u32..4,
        slot_times in proptest::collection::vec(0u64..50_000, 12..13),
        slot_oks in proptest::collection::vec(proptest::bool::ANY, 12..13),
        slot_waits in proptest::collection::vec(0.0f64..200.0, 12..13),
        num_slots in 0usize..12,
        donor in 0u32..8,
        queue_len in 0usize..300,
        beacon_rca in 0.0f64..1e7,
        beacon_queue in 0usize..300,
        rssi in -150.0f64..-40.0,
        now_s in 0u64..100_000,
        wait_s in 0.0f64..600.0,
    ) {
        let scheme = scheme_of(scheme_idx);
        let config = RoutingConfig::paper_default(scheme);
        let mut by_enum = RoutingState::new(config);
        let mut by_trait = RoutingState::with_policy(config, scheme.policy());

        // Drive both through an identical history: sink slots (sorted so
        // times advance) and one handover acceptance.
        let mut times = slot_times[..num_slots].to_vec();
        times.sort_unstable();
        for (i, &t) in times.iter().enumerate() {
            let cap = slot_oks[i].then_some(3_000.0);
            by_enum.on_sink_slot(SimTime::from_secs(t), cap, slot_waits[i]);
            by_trait.on_sink_slot(SimTime::from_secs(t), cap, slot_waits[i]);
        }
        by_enum.on_received_data(NodeId::new(donor));
        by_trait.on_received_data(NodeId::new(donor));

        prop_assert_eq!(
            by_enum.beacon_metric().to_bits(),
            by_trait.beacon_metric().to_bits(),
            "beacon metric diverged for {:?}", scheme
        );
        let beacon = Beacon {
            sender: NodeId::new(1),
            rca_etx: beacon_rca,
            queue_len: beacon_queue,
        };
        let now = SimTime::from_secs(now_s);
        prop_assert_eq!(
            by_enum.decide(now, wait_s, queue_len, &beacon, rssi),
            by_trait.decide(now, wait_s, queue_len, &beacon, rssi),
            "decision diverged for {:?}", scheme
        );
    }

    /// Full-engine equivalence: for arbitrary smoke-scale configurations
    /// (any scheme × environment × gateway density × duration × seed),
    /// plugging the scheme in as a boxed [`PolicySpec`] reproduces the
    /// enum path's report exactly — every counter equal and every float
    /// statistic bit-identical.
    #[test]
    fn engine_runs_bit_identical_across_dispatch_paths(
        scheme_idx in 0u32..4,
        urban in proptest::bool::ANY,
        gateways in 4usize..12,
        duration_min in 20u64..40,
        seed in 0u64..1_000_000,
    ) {
        let scheme = scheme_of(scheme_idx);
        let environment = if urban { Environment::Urban } else { Environment::Rural };
        let base = Scenario::custom(environment)
            .smoke()
            .gateways(gateways)
            .duration(SimDuration::from_mins(duration_min));

        let by_enum = base.clone().scheme(scheme).run(seed).expect("valid scheme config");
        let by_trait = base
            .clone()
            .scheme(scheme) // keeps the scheme coordinate identical
            .tweak(|c| c.policy = Some(PolicySpec::from(scheme)))
            .run(seed)
            .expect("valid policy config");

        prop_assert_eq!(float_bits(&by_enum), float_bits(&by_trait));
        prop_assert_eq!(by_enum, by_trait, "trait dispatch diverged for {:?}", scheme);
    }
}
