//! Property-based tests over the binary scenario format: for arbitrary
//! small metro worlds and scenario knobs, write → read → write is
//! byte-identical, and a run from the loaded file is bit-identical to a
//! run from the in-memory configuration.
//!
//! Together these pin the two contracts the format makes: serialization
//! is canonical (no hidden state escapes a round trip, so files can be
//! compared byte-wise), and a world that took minutes to generate can be
//! shipped to another machine without perturbing a single RNG draw.

use mlora::core::Scheme;
use mlora::mobility::DiurnalProfile;
use mlora::sim::{
    BusWithdrawal, DisruptionPlan, GatewayOutage, MetroConfig, NoiseBurst, Scenario, SimConfig,
};
use mlora::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// Builds a small-but-arbitrary metro world and scenario from flat
/// scalar draws. Worlds stay tiny (tens of buses, tens of minutes) so a
/// case runs in milliseconds; every section of the format — world,
/// routes, fleet, gateways, disruptions — varies across cases.
#[allow(clippy::too_many_arguments)] // one flat scalar per proptest draw
fn scenario_from(
    radials: usize,
    rings: usize,
    buses: usize,
    area_km: f64,
    horizon_mins: u64,
    level: f64,
    scheme_pick: u32,
    gateways: usize,
    disrupt: bool,
    open_outage: bool,
    world_seed: u64,
) -> SimConfig {
    let metro = MetroConfig {
        area_side_m: area_km * 1_000.0,
        num_radials: radials,
        num_rings: rings,
        waypoints_per_line: 3,
        peak_active_buses: buses,
        min_legs: 1,
        max_legs: 2,
        horizon: SimDuration::from_mins(horizon_mins),
        profile: DiurnalProfile::flat(level),
        ..MetroConfig::default()
    };
    let scheme = Scheme::ALL[scheme_pick as usize % Scheme::ALL.len()];
    let mut builder = Scenario::urban()
        .scheme(scheme)
        .gateways(gateways)
        .metro(&metro, world_seed);
    if disrupt {
        let horizon = SimDuration::from_mins(horizon_mins);
        builder = builder.disruptions(DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 0,
                start: SimTime::ZERO + horizon / 4,
                duration: (!open_outage).then_some(horizon / 4),
            }],
            withdrawals: vec![BusWithdrawal {
                at: SimTime::ZERO + horizon / 2,
                fraction: 0.25,
            }],
            noise_bursts: vec![NoiseBurst {
                center: mlora::geo::Point::new(area_km * 500.0, area_km * 500.0),
                radius_m: area_km * 250.0,
                start: SimTime::ZERO + horizon / 3,
                duration: Some(horizon / 6),
                extra_loss_db: 12.0,
            }],
        });
    }
    builder.build().expect("generated scenario is valid")
}

proptest! {
    /// Serialization is canonical: writing a loaded scenario reproduces
    /// the original file byte for byte, across arbitrary worlds, scheme
    /// and gateway choices, and disruption timelines (including
    /// open-ended outages, which exercise the `Option` encoding).
    #[test]
    fn scenario_files_roundtrip_byte_identically(
        radials in 1usize..5,
        rings in 1usize..4,
        buses in 10usize..60,
        area_km in 3.0f64..8.0,
        horizon_mins in 20u64..50,
        level in 0.3f64..1.0,
        scheme_pick in 0u32..8,
        gateways in 2usize..12,
        disrupt in proptest::bool::ANY,
        open_outage in proptest::bool::ANY,
        world_seed in 0u64..1_000_000,
    ) {
        let config = scenario_from(
            radials, rings, buses, area_km, horizon_mins, level,
            scheme_pick, gateways, disrupt, open_outage, world_seed,
        );
        let mut bytes = Vec::new();
        config.to_writer(&mut bytes).expect("scenario serializes");
        let reloaded = SimConfig::from_reader(bytes.as_slice()).expect("file loads");
        let mut rewritten = Vec::new();
        reloaded.to_writer(&mut rewritten).expect("reloaded scenario serializes");
        prop_assert_eq!(&bytes, &rewritten);

        // The world survived structurally, not just byte-wise.
        let (a, b) = (config.world.as_ref().unwrap(), reloaded.world.as_ref().unwrap());
        prop_assert_eq!(a.routes().len(), b.routes().len());
        prop_assert_eq!(a.trips().len(), b.trips().len());
    }

    /// A scenario loaded from its file runs bit-identically to the
    /// in-memory original: same seed, same report, down to every float.
    #[test]
    fn loaded_worlds_run_bit_identically(
        radials in 1usize..4,
        rings in 1usize..3,
        buses in 10usize..40,
        area_km in 3.0f64..6.0,
        horizon_mins in 20u64..40,
        scheme_pick in 0u32..8,
        gateways in 2usize..8,
        disrupt in proptest::bool::ANY,
        seeds in proptest::collection::vec(0u64..1_000_000, 2..3),
    ) {
        let config = scenario_from(
            radials, rings, buses, area_km, horizon_mins, 0.8,
            scheme_pick, gateways, disrupt, false, seeds[0],
        );
        let mut bytes = Vec::new();
        config.to_writer(&mut bytes).expect("scenario serializes");
        let reloaded = SimConfig::from_reader(bytes.as_slice()).expect("file loads");

        let from_memory = config.run(seeds[1]).expect("in-memory run");
        let from_file = reloaded.run(seeds[1]).expect("loaded run");
        prop_assert_eq!(from_memory, from_file);
    }
}
