//! Property-based tests over the traffic-model subsystem: for arbitrary
//! generated profile mixes, a full engine run conserves every
//! per-profile counter, keeps frames inside the PHY byte budget, keeps
//! observed payloads inside their profile's declared bounds, and stays
//! bit-deterministic.

use mlora::mac::{MAX_BUNDLE_BYTES, MAX_FRAME_BYTES};
use mlora::mobility::DiurnalProfile;
use mlora::sim::{
    ArrivalProcess, FrameTransmitted, MessageGenerated, PayloadModel, Priority, Scenario,
    SimObserver, TrafficModel, TrafficProfile,
};
use mlora::simcore::SimDuration;
use proptest::prelude::*;

/// Builds an arbitrary-but-valid model from flat scalar draws: `kinds`
/// selects the arrival process, `intervals`/`jitters`/`bursts`/`idles`
/// parameterise it, `payload_los`/`payload_spans` shape the payload
/// distribution, and `weights`/`priorities` mix the fleet.
#[allow(clippy::too_many_arguments)]
fn model_from(
    kinds: &[u32],
    intervals: &[u64],
    jitters: &[f64],
    bursts: &[f64],
    idles: &[u64],
    payload_los: &[usize],
    payload_spans: &[usize],
    weights: &[f64],
    priorities: &[u32],
) -> TrafficModel {
    let profiles = kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let interval = SimDuration::from_secs(intervals[i].max(30));
            let arrivals = match kind % 5 {
                0 => ArrivalProcess::Periodic { interval },
                1 => ArrivalProcess::Jittered {
                    interval,
                    jitter: jitters[i],
                },
                2 => ArrivalProcess::Poisson {
                    mean_interval: interval,
                },
                3 => ArrivalProcess::Diurnal {
                    base_interval: interval,
                    profile: DiurnalProfile::london_buses(),
                },
                _ => ArrivalProcess::Bursty {
                    interval,
                    mean_burst: bursts[i],
                    mean_idle: SimDuration::from_secs(idles[i].max(30)),
                },
            };
            let lo = payload_los[i].clamp(1, MAX_BUNDLE_BYTES);
            let hi = (lo + payload_spans[i]).min(MAX_BUNDLE_BYTES);
            let payload = if payload_spans[i] == 0 {
                PayloadModel::Fixed { bytes: lo }
            } else {
                PayloadModel::Uniform {
                    min_bytes: lo,
                    max_bytes: hi,
                }
            };
            TrafficProfile::new(format!("p{i}"), arrivals, payload)
                .weight(weights[i])
                .priority(Priority::ALL[priorities[i] as usize % 3])
        })
        .collect::<Vec<_>>();
    TrafficModel::mix(profiles)
}

/// Checks, in-stream, that every generated payload stays inside its
/// profile's declared bounds and every frame inside the PHY budget.
struct BoundsChecker {
    bounds: Vec<(usize, usize)>,
    violations: Vec<String>,
    generated: u64,
    frames: u64,
}

impl BoundsChecker {
    fn new(model: &TrafficModel) -> Self {
        BoundsChecker {
            bounds: model
                .profiles
                .iter()
                .map(|p| (p.payload.min_bytes(), p.payload.max_bytes()))
                .collect(),
            violations: Vec::new(),
            generated: 0,
            frames: 0,
        }
    }
}

impl SimObserver for BoundsChecker {
    fn on_message_generated(&mut self, ev: &MessageGenerated) {
        self.generated += 1;
        match self.bounds.get(ev.profile as usize) {
            Some(&(lo, hi)) => {
                let bytes = ev.payload_bytes as usize;
                if bytes < lo || bytes > hi {
                    self.violations
                        .push(format!("payload {bytes} outside [{lo}, {hi}]"));
                }
            }
            None => self
                .violations
                .push(format!("unknown profile {}", ev.profile)),
        }
    }

    fn on_frame_tx(&mut self, ev: &FrameTransmitted) {
        self.frames += 1;
        if ev.payload_bytes > MAX_FRAME_BYTES {
            self.violations
                .push(format!("frame payload {} > PHY max", ev.payload_bytes));
        }
        if ev.bundled == 0 {
            self.violations.push("empty frame transmitted".into());
        }
    }
}

proptest! {
    /// Per-profile counters partition the fleet totals: generation and
    /// delivery sum exactly, no profile delivers more than it generated,
    /// attributed airtime stays below the fleet total, and every
    /// observed payload and frame respects its declared bounds.
    #[test]
    fn heterogeneous_runs_conserve_per_profile_counters(
        seed in 0u64..1_000_000,
        kinds in proptest::collection::vec(0u32..5, 1..4),
        intervals in proptest::collection::vec(30u64..600, 4..5),
        jitters in proptest::collection::vec(0.05f64..0.5, 4..5),
        bursts in proptest::collection::vec(1.0f64..6.0, 4..5),
        idles in proptest::collection::vec(30u64..1_200, 4..5),
        payload_los in proptest::collection::vec(1usize..120, 4..5),
        payload_spans in proptest::collection::vec(0usize..60, 4..5),
        weights in proptest::collection::vec(0.1f64..5.0, 4..5),
        priorities in proptest::collection::vec(0u32..3, 4..5),
    ) {
        let model = model_from(
            &kinds, &intervals, &jitters, &bursts, &idles,
            &payload_los, &payload_spans, &weights, &priorities,
        );
        let config = Scenario::urban()
            .smoke()
            .duration(SimDuration::from_mins(40))
            .traffic(model.clone())
            .build()
            .expect("generated model is valid");
        let mut checker = BoundsChecker::new(&model);
        let report = config
            .run_with_observer(seed, &mut checker)
            .expect("valid config");

        prop_assert!(checker.violations.is_empty(), "{:?}", checker.violations);
        prop_assert_eq!(checker.generated, report.generated);
        prop_assert_eq!(checker.frames, report.frames_sent);
        prop_assert!(report.delivered <= report.generated);
        prop_assert_eq!(report.profiles.len(), model.profiles.len());

        let gen_sum: u64 = report.profiles.iter().map(|p| p.generated).sum();
        let del_sum: u64 = report.profiles.iter().map(|p| p.delivered).sum();
        let msg_sum: u64 = report.profiles.iter().map(|p| p.messages_sent).sum();
        prop_assert_eq!(gen_sum, report.generated);
        prop_assert_eq!(del_sum, report.delivered);
        prop_assert_eq!(msg_sum, report.messages_sent);
        for p in &report.profiles {
            prop_assert!(p.delivered <= p.generated, "{}: {:?}", p.name, p);
            prop_assert!(p.delivery_ratio() <= 1.0);
            prop_assert!(p.mean_delay_s().is_finite());
            prop_assert!(p.airtime_s >= 0.0);
        }
        // Airtime attribution never invents time: the per-profile shares
        // sum to strictly less than the fleet total (frame overhead is
        // unattributed) whenever anything was sent.
        let attributed: f64 = report.profiles.iter().map(|p| p.airtime_s).sum();
        prop_assert!(attributed <= report.total_airtime_s + 1e-9);
        if report.messages_sent > 0 {
            prop_assert!(report.total_airtime_s > 0.0);
        }
    }

    /// Heterogeneous runs are bit-deterministic: the same `(model,
    /// seed)` pair reproduces the identical report — per-profile Welford
    /// accumulators included.
    #[test]
    fn heterogeneous_runs_are_deterministic(
        seed in 0u64..1_000_000,
        kinds in proptest::collection::vec(0u32..5, 1..4),
        intervals in proptest::collection::vec(30u64..600, 4..5),
        jitters in proptest::collection::vec(0.05f64..0.5, 4..5),
        bursts in proptest::collection::vec(1.0f64..6.0, 4..5),
        idles in proptest::collection::vec(30u64..1_200, 4..5),
        payload_los in proptest::collection::vec(1usize..120, 4..5),
        payload_spans in proptest::collection::vec(0usize..60, 4..5),
        weights in proptest::collection::vec(0.1f64..5.0, 4..5),
        priorities in proptest::collection::vec(0u32..3, 4..5),
    ) {
        let model = model_from(
            &kinds, &intervals, &jitters, &bursts, &idles,
            &payload_los, &payload_spans, &weights, &priorities,
        );
        let config = Scenario::urban()
            .smoke()
            .duration(SimDuration::from_mins(30))
            .traffic(model)
            .build()
            .expect("generated model is valid");
        let a = config.run(seed).expect("valid config");
        let b = config.run(seed).expect("valid config");
        prop_assert_eq!(a, b);
    }
}
