//! Property-based tests over the engine snapshot subsystem: for
//! arbitrary scenarios (scheme × traffic × disruptions × shard count)
//! and an arbitrary snapshot instant, capturing mid-run state and
//! resuming it reproduces the uninterrupted run bit for bit; what-if
//! forks are deterministic, their control branch is exact, and a branch
//! diverges only once its overlay's first event fires.
//!
//! The closing golden fixture replays the 20 000-bus metro world
//! through a mid-run snapshot at scale; like the metro fingerprints it
//! is compiled only under the release profile (CI's `release-tests`
//! job).

use mlora::core::Scheme;
use mlora::geo::Point;
use mlora::sim::{
    BusWithdrawal, DisruptionPlan, Engine, GatewayOutage, NoiseBurst, QueueKind, Runner, Scenario,
    SimConfig, Snapshot, TrafficModel, TrafficProfile,
};
use mlora::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// The smoke preset's horizon, seconds.
const HORIZON_S: u64 = 2 * 3600;

/// The scheme under test, decoded from a flat draw.
fn scheme(idx: u32) -> Scheme {
    match idx % 4 {
        0 => Scheme::NoRouting,
        1 => Scheme::RcaEtx,
        2 => Scheme::CaEtx,
        _ => Scheme::Robc,
    }
}

/// A mixed-profile traffic model exercising per-device RNG cursors,
/// priorities and payload models.
fn traffic() -> TrafficModel {
    TrafficModel::mix([TrafficProfile::telemetry(), TrafficProfile::alerts()])
}

/// A disruption plan hitting all three mechanisms inside the smoke
/// horizon: outage depth, fleet withdrawal and regional noise.
fn disruptions() -> DisruptionPlan {
    DisruptionPlan {
        outages: vec![GatewayOutage {
            gateway: 0,
            start: SimTime::from_secs(600),
            duration: Some(SimDuration::from_secs(900)),
        }],
        withdrawals: vec![BusWithdrawal {
            at: SimTime::from_secs(1_800),
            fraction: 0.2,
        }],
        noise_bursts: vec![NoiseBurst {
            center: Point::new(5_000.0, 5_000.0),
            radius_m: 4_000.0,
            start: SimTime::from_secs(1_200),
            duration: Some(SimDuration::from_secs(600)),
            extra_loss_db: 10.0,
        }],
    }
}

/// The configuration a property case runs: smoke scale with the drawn
/// scheme and shard count, optionally with traffic and disruptions.
fn config(scheme_idx: u32, shards: usize, with_traffic: bool, with_disruptions: bool) -> SimConfig {
    let mut builder = Scenario::urban()
        .smoke()
        .scheme(scheme(scheme_idx))
        .shards(shards);
    if with_traffic {
        builder = builder.traffic(traffic());
    }
    if with_disruptions {
        builder = builder.disruptions(disruptions());
    }
    builder.build().expect("property scenario is valid")
}

proptest! {
    /// The tentpole property: snapshot at an arbitrary event boundary,
    /// restore, run to the horizon — bit-identical to the uninterrupted
    /// run, for every scheme, with traffic and disruptions active,
    /// across shard counts. Taking the snapshot must also leave the
    /// running engine unperturbed.
    #[test]
    fn resume_is_bit_identical_to_the_uninterrupted_run(
        scheme_idx in 0u32..4,
        shards_idx in 0usize..3,
        seed in 0u64..1_000,
        snap_frac in 0.05f64..0.95,
        with_traffic in proptest::bool::ANY,
        with_disruptions in proptest::bool::ANY,
        on_calendar in proptest::bool::ANY,
    ) {
        let shards = 1 << shards_idx; // 1, 2, 4
        let mut cfg = config(scheme_idx, shards, with_traffic, with_disruptions);
        // Run and snapshot under either queue kind, then resume on the
        // *other* one: the kind is a host knob snapshots do not record,
        // so every crossing must be bit-identical.
        let (run_q, resume_q) = if on_calendar {
            (QueueKind::Calendar, QueueKind::BinaryHeap)
        } else {
            (QueueKind::BinaryHeap, QueueKind::Calendar)
        };
        cfg.queue = run_q;
        let baseline = Engine::new(cfg.clone(), seed).run();

        let snap_t = SimTime::from_secs((HORIZON_S as f64 * snap_frac) as u64);
        let mut engine = Engine::new(cfg, seed);
        engine.run_until(snap_t);
        let snap = engine.snapshot().expect("snapshot mid-run");

        // The snapshotted engine keeps running unperturbed...
        prop_assert_eq!(engine.finish(), baseline.clone());
        // ...and the resumed copy reproduces the identical report, even
        // after a serialization round trip through raw bytes and a
        // switch to the opposite queue kind.
        let reloaded = Snapshot::from_bytes(snap.as_bytes().to_vec()).expect("reload");
        prop_assert_eq!(
            Engine::resume_on_queue(&reloaded, DisruptionPlan::default(), resume_q)
                .expect("resume")
                .finish(),
            baseline
        );
    }
}

proptest! {
    /// Fork semantics: the control branch (empty overlay) reproduces
    /// the uninterrupted run exactly, identical overlays produce
    /// identical branches, and [`Runner::fork`] matches driving
    /// [`Engine::resume_with_overlay`] by hand.
    #[test]
    fn fork_control_is_exact_and_branches_are_deterministic(
        scheme_idx in 0u32..4,
        seed in 0u64..1_000,
        snap_frac in 0.1f64..0.6,
        overlay_frac in 0.65f64..0.9,
        workers in 1usize..5,
    ) {
        let cfg = config(scheme_idx, 1, true, true);
        let baseline = Engine::new(cfg.clone(), seed).run();

        let snap_t = SimTime::from_secs((HORIZON_S as f64 * snap_frac) as u64);
        let mut engine = Engine::new(cfg, seed);
        engine.run_until(snap_t);
        let snap = engine.snapshot().expect("snapshot mid-run");

        let overlay = DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 1,
                start: SimTime::from_secs((HORIZON_S as f64 * overlay_frac) as u64),
                duration: Some(SimDuration::from_secs(600)),
            }],
            ..DisruptionPlan::default()
        };
        let branches = Runner::new()
            .workers(workers)
            .fork(&snap, &[DisruptionPlan::default(), overlay.clone(), overlay.clone()])
            .expect("fork runs");
        prop_assert_eq!(branches.len(), 3);
        prop_assert_eq!(branches[0].clone(), baseline);
        prop_assert_eq!(branches[1].clone(), branches[2].clone());
        let by_hand = Engine::resume_with_overlay(&snap, overlay)
            .expect("resume with overlay")
            .finish();
        prop_assert_eq!(branches[1].clone(), by_hand);
    }
}

proptest! {
    /// A forked branch diverges only after its overlay's first event:
    /// probed at any instant up to the overlay start, the overlay
    /// branch has processed exactly the events the control branch has.
    #[test]
    fn fork_diverges_only_after_the_overlay_start(
        scheme_idx in 0u32..4,
        seed in 0u64..1_000,
        snap_frac in 0.1f64..0.4,
        probe_frac in 0.0f64..1.0,
    ) {
        let cfg = config(scheme_idx, 1, true, false);
        let snap_t = SimTime::from_secs((HORIZON_S as f64 * snap_frac) as u64);
        let overlay_start_s = HORIZON_S * 3 / 4;
        let mut engine = Engine::new(cfg, seed);
        engine.run_until(snap_t);
        let snap = engine.snapshot().expect("snapshot mid-run");

        let overlay = DisruptionPlan {
            withdrawals: vec![BusWithdrawal {
                at: SimTime::from_secs(overlay_start_s),
                fraction: 0.3,
            }],
            ..DisruptionPlan::default()
        };
        let mut control = Engine::resume(&snap).expect("resume control");
        let mut branch =
            Engine::resume_with_overlay(&snap, overlay).expect("resume branch");

        // Any probe instant strictly before the overlay start must see
        // identical progress on both branches.
        let span = overlay_start_s - snap_t.as_millis() / 1000 - 1;
        let probe =
            SimTime::from_secs(snap_t.as_millis() / 1000 + (span as f64 * probe_frac) as u64);
        prop_assert_eq!(control.run_until(probe), branch.run_until(probe));
        // Past the overlay start the branches may diverge freely (the
        // withdrawal culls its buses' future events); both must still
        // run cleanly to completion.
        control.finish();
        branch.finish();
    }
}

/// Golden fixture: the 20 000-bus metro world (the `metro_scale`
/// fixture generator) snapshotted mid-run and resumed, bit-identical to
/// the uninterrupted run. Release builds only — the fleet is far too
/// large for the debug profile.
#[cfg(not(debug_assertions))]
#[test]
fn metro_scale_resume_is_bit_identical() {
    use mlora::mobility::{DiurnalProfile, MetroConfig};

    let metro = MetroConfig {
        area_side_m: 20_000.0,
        num_radials: 48,
        num_rings: 24,
        peak_active_buses: 24_000,
        min_legs: 1,
        max_legs: 1,
        horizon: SimDuration::from_mins(40),
        profile: DiurnalProfile::flat(1.0),
        ..MetroConfig::default()
    };
    let cfg = Scenario::urban()
        .scheme(Scheme::Robc)
        .metro(&metro, 4242)
        .build()
        .expect("metro scenario is valid");

    let baseline = Engine::new(cfg.clone(), 4242).run();
    let mut engine = Engine::new(cfg, 4242);
    engine.run_until(SimTime::from_secs(20 * 60));
    let snap = engine.snapshot().expect("snapshot mid-run");
    assert_eq!(engine.finish(), baseline, "snapshot must not perturb");
    let resumed = Snapshot::from_bytes(snap.as_bytes().to_vec()).expect("reload");
    assert_eq!(
        Engine::resume(&resumed).expect("resume").finish(),
        baseline,
        "metro-scale resume must be bit-identical"
    );
}
