//! Metro-scale golden fixtures: a 20 000-bus generated world, pinned
//! bit-for-bit and invariant to the runner's worker count.
//!
//! The world comes from the metro generator (radial + ring arterials,
//! staggered per-line fleets) rather than the paper's random-waypoint
//! substrate, so these fixtures additionally pin the generator: any
//! change to its RNG draw order or geometry changes the fleet and fails
//! the fingerprint.
//!
//! The simulation fixtures run at 20k-fleet scale and are compiled only
//! under the release profile (CI's `release-tests` job); the structural
//! and scenario-file round-trip checks are cheap and run everywhere.
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```text
//! cargo test --release --test metro_scale -- --ignored --nocapture
//! ```
//!
//! and paste the printed rows over `FIXTURES`.

use mlora::core::Scheme;
use mlora::mobility::DiurnalProfile;
use mlora::sim::{MetroConfig, Scenario, SimConfig};
#[cfg(not(debug_assertions))]
use mlora::sim::{QueueKind, SimReport};
use mlora::simcore::SimDuration;

/// The seed every fixture run uses.
const GOLDEN_SEED: u64 = 4242;

/// Width of one fingerprint: 11 exact counters, 6 float bit patterns and
/// a bucket-weighted series checksum (same layout as
/// `tests/golden_determinism.rs`).
#[cfg(not(debug_assertions))]
const FP_LEN: usize = 18;

/// A compact metro: 20 km side so route cycles are short enough that the
/// staggered fleet fully materializes inside a 40-minute service window,
/// with the flat profile keeping event density constant.
fn metro_config() -> MetroConfig {
    MetroConfig {
        area_side_m: 20_000.0,
        num_radials: 48,
        num_rings: 24,
        peak_active_buses: 24_000,
        min_legs: 1,
        max_legs: 1,
        horizon: SimDuration::from_mins(40),
        profile: DiurnalProfile::flat(1.0),
        ..MetroConfig::default()
    }
}

fn metro_scenario(scheme: Scheme) -> SimConfig {
    Scenario::urban()
        .scheme(scheme)
        .metro(&metro_config(), GOLDEN_SEED)
        .build()
        .expect("metro scenario is valid")
}

/// A bit-exact digest of everything a [`SimReport`] contains.
#[cfg(not(debug_assertions))]
fn fingerprint(r: &SimReport) -> [u64; FP_LEN] {
    let series: u64 = r
        .throughput_series
        .counts()
        .iter()
        .enumerate()
        .map(|(i, &c)| c.wrapping_mul(i as u64 + 1))
        .fold(0, u64::wrapping_add);
    [
        r.generated,
        r.delivered,
        r.duplicates,
        r.stranded,
        r.queue_drops,
        r.frames_sent,
        r.messages_sent,
        r.handover_frames,
        r.handover_messages,
        r.collisions,
        r.devices_seen,
        r.mean_delay_s().to_bits(),
        r.delay_std_error_s().to_bits(),
        r.mean_hops().to_bits(),
        r.max_hops().to_bits(),
        r.total_energy_mj.to_bits(),
        r.total_active_s.to_bits(),
        series,
    ]
}

#[test]
fn metro_world_clears_twenty_thousand_buses() {
    let config = metro_scenario(Scheme::Robc);
    let world = config.world.as_ref().expect("metro attaches a world");
    assert!(
        world.trips().len() >= 20_000,
        "fleet too small: {} trips",
        world.trips().len()
    );
}

#[test]
fn metro_world_scenario_file_roundtrips_bit_identically() {
    let config = metro_scenario(Scheme::Robc);
    let mut bytes = Vec::new();
    config
        .to_writer(&mut bytes)
        .expect("metro config serializes");
    let reloaded = SimConfig::from_reader(bytes.as_slice()).expect("metro file loads");
    let mut rewritten = Vec::new();
    reloaded
        .to_writer(&mut rewritten)
        .expect("reloaded config serializes");
    assert_eq!(
        bytes, rewritten,
        "write -> read -> write must be byte-identical"
    );
    assert_eq!(
        reloaded.world.as_ref().map(|w| w.trips().len()),
        config.world.as_ref().map(|w| w.trips().len())
    );
}

/// The fixture schemes: the cheap no-forwarding baseline plus ROBC, the
/// paper's headline scheme.
#[cfg(not(debug_assertions))]
const SCHEMES: [Scheme; 2] = [Scheme::NoRouting, Scheme::Robc];

/// Recorded at 20k-fleet scale (seed 4242, 40-minute horizon).
#[cfg(not(debug_assertions))]
const FIXTURES: [[u64; FP_LEN]; 2] = [
    // NoRouting
    [
        115475,
        98255,
        0,
        17220,
        0,
        534962,
        853076,
        0,
        0,
        20637061,
        20685,
        4637574992908101156,
        4603075239237348054,
        4607182418800017408,
        4607182418800017408,
        4740333734611787318,
        4716340379392214564,
        303043,
    ],
    // Robc
    [
        115369,
        94332,
        21089,
        21037,
        0,
        886554,
        1184141,
        313256,
        257705,
        43115792,
        20685,
        4638689301604747260,
        4603439328014124190,
        4613060224546989205,
        4632092954238910464,
        4740413047789168312,
        4716340379392214564,
        288872,
    ],
];

/// Runs both fixture schemes through the parallel [`Runner`] at the
/// given worker count, returning the executed cells in plan order.
#[cfg(not(debug_assertions))]
fn run_cells(workers: usize) -> Vec<mlora::sim::CellResult> {
    use mlora::sim::{ExperimentPlan, Runner};

    let plan = ExperimentPlan::new(metro_scenario(Scheme::Robc))
        .schemes(SCHEMES)
        .fixed_seeds([GOLDEN_SEED]);
    Runner::new()
        .workers(workers)
        .run(&plan)
        .expect("metro plan runs")
}

#[cfg(not(debug_assertions))]
#[test]
fn metro_fingerprints_match_and_survive_worker_counts() {
    let single = run_cells(1);
    assert_eq!(single.len(), FIXTURES.len());
    for (cell, expected) in single.iter().zip(FIXTURES) {
        assert_eq!(
            fingerprint(cell.report.single()),
            expected,
            "{:?} fingerprint drifted",
            cell.key.scheme
        );
    }
    // The same plan across a thread pool must be bit-identical to the
    // sequential run — scheduling can never leak into results.
    let pooled = run_cells(3);
    assert_eq!(single, pooled);
}

/// The spatially partitioned engine must reproduce the metro
/// fingerprints bit for bit at shards 2 and 4 — the fixture the
/// parallel speedup is measured against.
#[cfg(not(debug_assertions))]
#[test]
fn metro_fingerprints_survive_sharding() {
    for shards in [2, 4] {
        for (scheme, expected) in SCHEMES.into_iter().zip(FIXTURES) {
            let mut cfg = metro_scenario(scheme);
            cfg.shards = shards;
            let report = cfg.run(GOLDEN_SEED).expect("sharded metro run");
            assert_eq!(
                fingerprint(&report),
                expected,
                "{scheme:?} fingerprint drifted at {shards} shards"
            );
        }
    }
}

/// The calendar event queue reproduces the metro fingerprints bit for
/// bit, serially and sharded — the fixture family the calendar-queue
/// throughput tiers in `BENCH_engine.json` are measured against.
#[cfg(not(debug_assertions))]
#[test]
fn metro_fingerprints_survive_calendar_queue() {
    for shards in [1, 2, 4] {
        for (scheme, expected) in SCHEMES.into_iter().zip(FIXTURES) {
            let mut cfg = metro_scenario(scheme);
            cfg.shards = shards;
            cfg.queue = QueueKind::Calendar;
            let report = cfg.run(GOLDEN_SEED).expect("calendar metro run");
            assert_eq!(
                fingerprint(&report),
                expected,
                "{scheme:?} fingerprint drifted on the calendar queue ({shards} shard)"
            );
        }
    }
}

/// Prints the fixture table; run with `--ignored --nocapture` to
/// regenerate `FIXTURES` after an intentional behaviour change.
#[cfg(not(debug_assertions))]
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_metro_fingerprints() {
    for cell in run_cells(1) {
        println!("// {:?}", cell.key.scheme);
        println!("{:?},", fingerprint(cell.report.single()));
    }
}
