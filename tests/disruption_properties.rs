//! Property-based tests over the disruption-timeline subsystem: for
//! arbitrary generated plans, compilation pairs every window correctly
//! and a full engine run preserves the structural invariants the
//! mutation paths must maintain.

use mlora::geo::Point;
use mlora::sim::{
    BusWithdrawal, DisruptionEvent, DisruptionPlan, Engine, GatewayOutage, NoiseBurst, Scenario,
};
use mlora::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// Gateways deployed by the scenario every property runs against (the
/// smoke preset's 3×3 grid).
const GATEWAYS: usize = 9;

/// Builds an arbitrary-but-valid plan from flat scalar draws. Outage
/// durations of zero are mapped to open-ended windows (run to horizon),
/// everything else to a positive window.
fn plan_from(
    outage_gws: &[usize],
    outage_starts: &[u64],
    outage_durs: &[u64],
    withdraw_ats: &[u64],
    withdraw_fracs: &[f64],
    burst_starts: &[u64],
    burst_durs: &[u64],
) -> DisruptionPlan {
    let outages = outage_gws
        .iter()
        .zip(outage_starts)
        .zip(outage_durs)
        .map(|((&gateway, &start), &dur)| GatewayOutage {
            gateway: gateway % GATEWAYS,
            start: SimTime::from_secs(start),
            duration: (dur > 0).then(|| SimDuration::from_secs(dur)),
        })
        .collect();
    let withdrawals = withdraw_ats
        .iter()
        .zip(withdraw_fracs)
        .map(|(&at, &fraction)| BusWithdrawal {
            at: SimTime::from_secs(at),
            fraction,
        })
        .collect();
    let noise_bursts = burst_starts
        .iter()
        .zip(burst_durs)
        .map(|(&start, &dur)| NoiseBurst {
            center: Point::new(5_000.0, 5_000.0),
            radius_m: 4_000.0,
            start: SimTime::from_secs(start),
            duration: (dur > 0).then(|| SimDuration::from_secs(dur)),
            extra_loss_db: 10.0,
        })
        .collect();
    DisruptionPlan {
        outages,
        withdrawals,
        noise_bursts,
    }
}

proptest! {
    /// Compilation pairs every window: a per-gateway walk of the
    /// compiled timeline sees every recovery preceded by a failure
    /// (depth never goes negative), every closed window produces its
    /// recovery inside the horizon, and open-ended windows produce
    /// none — they run to the horizon. Noise bursts pair identically,
    /// and the whole timeline is time-ordered.
    #[test]
    fn compiled_timelines_pair_and_order(
        outage_gws in proptest::collection::vec(0usize..32, 0..6),
        outage_starts in proptest::collection::vec(0u64..10_000, 6..7),
        outage_durs in proptest::collection::vec(0u64..8_000, 6..7),
        withdraw_ats in proptest::collection::vec(0u64..10_000, 0..3),
        withdraw_fracs in proptest::collection::vec(0.05f64..1.0, 3..4),
        burst_starts in proptest::collection::vec(0u64..10_000, 0..3),
        burst_durs in proptest::collection::vec(0u64..8_000, 3..4),
        horizon_s in 600u64..7_200,
    ) {
        let plan = plan_from(
            &outage_gws, &outage_starts, &outage_durs,
            &withdraw_ats, &withdraw_fracs,
            &burst_starts, &burst_durs,
        );
        let horizon = SimDuration::from_secs(horizon_s);
        let end_of_run = SimTime::ZERO + horizon;
        let events = plan.compile(horizon);

        // Time-ordered, and nothing at or past the horizon.
        for w in events.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "timeline out of order");
        }
        prop_assert!(events.iter().all(|&(t, _)| t < end_of_run));

        let mut gw_depth = [0i64; GATEWAYS];
        let mut burst_open = vec![0i64; plan.noise_bursts.len()];
        let mut downs = 0usize;
        let mut ups = 0usize;
        for &(_, ev) in &events {
            match ev {
                DisruptionEvent::GatewayDown { gateway } => {
                    gw_depth[gateway as usize] += 1;
                    downs += 1;
                }
                DisruptionEvent::GatewayUp { gateway } => {
                    gw_depth[gateway as usize] -= 1;
                    prop_assert!(
                        gw_depth[gateway as usize] >= 0,
                        "recovery before failure for gateway {gateway}"
                    );
                    ups += 1;
                }
                DisruptionEvent::NoiseStart { burst } => burst_open[burst as usize] += 1,
                DisruptionEvent::NoiseEnd { burst } => {
                    burst_open[burst as usize] -= 1;
                    prop_assert!(burst_open[burst as usize] >= 0, "burst ends before start");
                }
                DisruptionEvent::Withdraw { .. } => {}
            }
        }
        // Every outage the horizon admits produced a Down; its Up exists
        // exactly when the window closes before the horizon.
        let expected_downs = plan
            .outages
            .iter()
            .filter(|o| o.start < end_of_run)
            .count();
        let expected_ups = plan
            .outages
            .iter()
            .filter(|o| {
                o.start < end_of_run
                    && o.duration.is_some_and(|d| o.start + d < end_of_run)
            })
            .count();
        prop_assert_eq!(downs, expected_downs);
        prop_assert_eq!(ups, expected_ups);
        // Unmatched depth is exactly the set of windows running to the
        // horizon.
        let open: i64 = gw_depth.iter().sum();
        prop_assert_eq!(open as usize, expected_downs - expected_ups);
    }

    /// End-to-end structural invariants: after a full disrupted run,
    /// the incrementally mutated gateway grid equals a from-scratch
    /// rebuild over the gateways still up, delivery never exceeds
    /// generation, and the withdrawal count is bounded by the fleet.
    #[test]
    fn disrupted_runs_preserve_engine_invariants(
        seed in 0u64..1_000_000,
        outage_gws in proptest::collection::vec(0usize..32, 0..4),
        outage_starts in proptest::collection::vec(0u64..3_600, 4..5),
        outage_durs in proptest::collection::vec(0u64..3_000, 4..5),
        withdraw_ats in proptest::collection::vec(0u64..3_600, 0..3),
        withdraw_fracs in proptest::collection::vec(0.05f64..0.9, 3..4),
        burst_starts in proptest::collection::vec(0u64..3_600, 0..2),
        burst_durs in proptest::collection::vec(0u64..3_000, 2..3),
    ) {
        let plan = plan_from(
            &outage_gws, &outage_starts, &outage_durs,
            &withdraw_ats, &withdraw_fracs,
            &burst_starts, &burst_durs,
        );
        let config = Scenario::urban()
            .smoke()
            .duration(SimDuration::from_mins(45))
            .disruptions(plan)
            .build()
            .expect("generated plan is valid");
        let (report, engine) = Engine::new(config, seed).run_returning_engine();

        prop_assert!(report.delivered <= report.generated);
        prop_assert!(report.delivered_of_outage_generated <= report.generated_during_outage);
        prop_assert!(report.generated_during_outage <= report.generated);
        prop_assert!(report.outage_delivery_ratio() <= 1.0);
        prop_assert!(report.clear_delivery_ratio() <= 1.0);
        prop_assert!(report.buses_withdrawn <= report.devices_seen);
        prop_assert!(report.outage_time_s <= 45.0 * 60.0 + 1e-9);
        prop_assert!(
            engine.gateway_grid_matches_rebuild(),
            "gateway grid diverged from a from-scratch rebuild"
        );
        // Gateways with only closed outage windows inside the run are
        // back up; open-ended ones that started are down.
        let up = engine.gateways_up();
        prop_assert_eq!(up.len(), GATEWAYS);
    }
}
