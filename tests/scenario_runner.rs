//! Integration tests for the redesigned public API: the `Scenario`
//! builder, streaming `SimObserver`s and the parallel multi-seed
//! experiment `Runner`, exercised through the facade.

use mlora::core::Scheme;
use mlora::sim::{
    ConfigError, Environment, EventCounter, ExperimentPlan, Runner, Scenario, SeriesObserver,
    SimConfig, TraceSink,
};
use mlora::simcore::SimDuration;

fn tiny() -> SimConfig {
    Scenario::urban()
        .smoke()
        .duration(SimDuration::from_mins(40))
        .build()
        .expect("tiny scenario is valid")
}

#[test]
fn builder_rejects_invalid_scenarios() {
    assert_eq!(
        Scenario::urban().gateways(0).build(),
        Err(ConfigError::Zero {
            field: "num_gateways"
        })
    );
    assert!(matches!(
        Scenario::rural().alpha(0.0).build(),
        Err(ConfigError::OutOfRange { field: "alpha", .. })
    ));
    assert!(matches!(
        Scenario::rural().alpha(1.5).build(),
        Err(ConfigError::OutOfRange { field: "alpha", .. })
    ));
    assert!(matches!(
        Scenario::urban().gateway_range_m(f64::NAN).build(),
        Err(ConfigError::NotFinite {
            field: "gateway_range_m",
            ..
        })
    ));
    assert!(matches!(
        Scenario::urban().duration(SimDuration::ZERO).build(),
        Err(ConfigError::Zero { field: "horizon" })
    ));
}

#[test]
fn builder_reproduces_legacy_constructors() {
    assert_eq!(
        Scenario::urban().scheme(Scheme::Robc).build().unwrap(),
        SimConfig::paper_default(Scheme::Robc, Environment::Urban)
    );
    assert_eq!(
        Scenario::rural()
            .scheme(Scheme::RcaEtx)
            .smoke()
            .build()
            .unwrap(),
        SimConfig::smoke_test(Scheme::RcaEtx, Environment::Rural)
    );
    assert_eq!(
        Scenario::urban().bench().build().unwrap(),
        SimConfig::bench_scale(Scheme::NoRouting, Environment::Urban)
    );
}

#[test]
fn observer_sees_exactly_the_reported_deliveries() {
    for scheme in Scheme::ALL {
        let mut counter = EventCounter::default();
        let report = Scenario::urban()
            .smoke()
            .scheme(scheme)
            .run_with_observer(42, &mut counter)
            .expect("valid scenario");
        assert!(report.delivered > 0, "{scheme}: nothing delivered");
        assert_eq!(
            counter.deliveries, report.delivered,
            "{scheme}: observer delivery count diverged from the report"
        );
        assert_eq!(counter.generated, report.generated);
        assert_eq!(counter.frames, report.frames_sent);
        assert_eq!(counter.handover_frames, report.handover_frames);
    }
}

#[test]
fn observers_do_not_perturb_the_simulation() {
    let config = tiny();
    let silent = config.run(7).unwrap();
    let mut counter = EventCounter::default();
    let mut series = SeriesObserver::new(config.series_bucket, config.horizon);
    let mut sink = TraceSink::csv(Vec::new());
    let mut tail = (&mut series, &mut sink);
    let observed = config
        .run_with_observer(7, &mut (&mut counter, &mut tail))
        .unwrap();
    assert_eq!(silent, observed, "observers changed the simulation");
    // The series observer reproduces the report's delivery series from
    // events alone.
    assert_eq!(
        series.delivered.counts(),
        observed.throughput_series.counts()
    );
    assert!(sink.events() > 0);
    let csv = String::from_utf8(sink.finish().unwrap()).unwrap();
    assert!(csv.starts_with("time_s,event,"), "missing CSV header");
}

#[test]
fn runner_output_is_independent_of_worker_count() {
    // The ISSUE acceptance shape: the Fig. 9 gateway sweep — 2
    // environments × 7 gateway counts × 2 schemes — replicated over
    // seeds, multi-threaded, must match the single-threaded run exactly.
    let plan = ExperimentPlan::new(tiny())
        .environments([Environment::Urban, Environment::Rural])
        .gateway_counts([2, 3, 4, 5, 6, 8, 9])
        .schemes([Scheme::NoRouting, Scheme::Robc])
        .seed(2020)
        .replicate(2);
    let serial = Runner::single_threaded().run(&plan).expect("valid plan");
    for workers in [2, 8] {
        let parallel = Runner::new()
            .workers(workers)
            .run(&plan)
            .expect("valid plan");
        assert_eq!(
            serial, parallel,
            "{workers}-worker run diverged from single-threaded"
        );
    }
    assert_eq!(serial.len(), 2 * 7 * 2);
    for cell in &serial {
        assert_eq!(cell.report.n(), 2, "every cell replicates over 2 seeds");
        let (lo, hi) = cell.report.ci95(|r| r.delivered as f64);
        assert!(lo <= cell.report.delivered_mean());
        assert!(cell.report.delivered_mean() <= hi);
    }
}

#[test]
fn replicated_cells_use_distinct_derived_seeds() {
    let plan = ExperimentPlan::new(tiny()).seed(9).replicate(3);
    let cells = Runner::new().run(&plan).expect("valid plan");
    let runs = cells[0].report.runs();
    assert_eq!(runs.len(), 3);
    // Seeds differ, and so do the resulting reports.
    assert!(runs.windows(2).all(|w| w[0].0 != w[1].0));
    assert_ne!(runs[0].1, runs[1].1);
    // Re-running the same plan reproduces the cell bit-for-bit.
    let again = Runner::new().run(&plan).expect("valid plan");
    assert_eq!(cells, again);
}

#[test]
fn runner_reports_invalid_cells_instead_of_panicking() {
    let plan = ExperimentPlan::new(tiny()).alphas([0.5, f64::NAN]);
    let err = Runner::new().run(&plan).expect_err("NaN alpha must fail");
    let message = err.to_string();
    assert!(message.contains("alpha"), "unhelpful error: {message}");
}
