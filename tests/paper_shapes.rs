//! Coarse "shape" tests asserting the qualitative results of §VII at a
//! reduced scale — who wins and in which direction, not absolute numbers.
//!
//! These run at the bench scale (6 simulated hours, ~800-bus peak, full
//! 600 km² area) and therefore take a few seconds each in release mode;
//! they are `#[ignore]`d by default and exercised via
//! `cargo test --release -- --ignored` or the repro harness.

use mlora::core::Scheme;
use mlora::sim::{Environment, SimConfig};

fn bench_run(scheme: Scheme, env: Environment, gateways: usize) -> mlora::sim::SimReport {
    let mut cfg = SimConfig::bench_scale(scheme, env);
    cfg.num_gateways = gateways;
    cfg.run(2020).expect("valid config")
}

#[test]
#[ignore = "multi-second bench-scale simulation; run with --ignored"]
fn robc_throughput_at_least_baseline_rural_sparse() {
    // Fig. 9 / Fig. 11: ROBC's queue-aware forwarding must not lose
    // throughput against plain LoRaWAN, and gains where coverage is thin.
    let base = bench_run(Scheme::NoRouting, Environment::Rural, 40);
    let robc = bench_run(Scheme::Robc, Environment::Rural, 40);
    assert!(
        robc.delivered as f64 >= 0.98 * base.delivered as f64,
        "ROBC {} far below baseline {}",
        robc.delivered,
        base.delivered
    );
}

#[test]
#[ignore = "multi-second bench-scale simulation; run with --ignored"]
fn rca_etx_trades_throughput_when_sparse() {
    // Fig. 9: "RCA-ETX receives its performance gain by trading
    // throughput" — it must not beat the baseline where coverage is thin.
    let base = bench_run(Scheme::NoRouting, Environment::Urban, 40);
    let rca = bench_run(Scheme::RcaEtx, Environment::Urban, 40);
    assert!(
        (rca.delivered as f64) <= 1.05 * base.delivered as f64,
        "RCA-ETX unexpectedly beats baseline throughput: {} vs {}",
        rca.delivered,
        base.delivered
    );
}

#[test]
#[ignore = "multi-second bench-scale simulation; run with --ignored"]
fn forwarding_raises_hop_count() {
    // Fig. 12: LoRaWAN is single-hop by construction; ROBC relays.
    let base = bench_run(Scheme::NoRouting, Environment::Rural, 40);
    let robc = bench_run(Scheme::Robc, Environment::Rural, 40);
    assert_eq!(base.mean_hops(), 1.0);
    assert!(
        robc.mean_hops() > 1.5,
        "ROBC hops {} too close to single-hop",
        robc.mean_hops()
    );
}

#[test]
#[ignore = "multi-second bench-scale simulation; run with --ignored"]
fn density_crossover_forwarding_gain_shrinks() {
    // Fig. 8: the schemes' delay advantage is largest at low gateway
    // density and shrinks as coverage saturates.
    let gain = |gws| {
        let base = bench_run(Scheme::NoRouting, Environment::Rural, gws);
        let robc = bench_run(Scheme::Robc, Environment::Rural, gws);
        base.mean_delay_s() - robc.mean_delay_s()
    };
    let sparse_gain = gain(40);
    let dense_gain = gain(100);
    // At minimum, the sparse-network gain must not be *smaller* by a wide
    // margin — the crossover direction must match the paper.
    assert!(
        sparse_gain + 5.0 >= dense_gain,
        "delay gain grew with density: sparse {sparse_gain:.1}s vs dense {dense_gain:.1}s"
    );
}
