//! Property-based tests over the pluggable event queue: the calendar
//! queue is observationally identical to the binary heap — same pop
//! sequence, same peek, same length — under arbitrary interleavings of
//! schedules and pops, including duplicate timestamps (where the packed
//! `(time, seq)` key decides) and far-future jumps that force bucket
//! rotation and calendar re-tuning. Checkpointing one kind and restoring
//! into the other mid-run must be invisible too: the ascending-key
//! record list is a shared wire format.

use mlora::simcore::{AnyEventQueue, CalendarQueue, QueueKind, SimTime};
use proptest::prelude::*;

/// One step of a queue workload.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule a payload at this absolute time (milliseconds).
    Schedule(u64),
    /// Pop the earliest pending event, if any.
    Pop,
}

/// Decodes one raw draw into a workload step. The mix — near-term
/// schedules (dense buckets, duplicate timestamps), far-future jumps
/// (bucket rotation across many empty days, grow-only re-tuning) and
/// pops — comes from the low bits; the time from the rest.
fn decode(word: u64) -> Op {
    match word & 7 {
        0..=3 => Op::Schedule((word >> 3) % 5_000),
        4 => Op::Schedule(1u64 << (10 + (word >> 3) % 18)),
        _ => Op::Pop,
    }
}

/// Applies one op to a queue, tagging each scheduled event with its
/// ordinal so pop results expose the full `(time, seq)` order.
fn apply(q: &mut AnyEventQueue<u32>, op: &Op, ordinal: u32) -> Option<(SimTime, u32)> {
    match op {
        Op::Schedule(ms) => {
            q.schedule(SimTime::from_millis(*ms), ordinal);
            None
        }
        Op::Pop => q.pop(),
    }
}

proptest! {
    /// Heap and calendar queues driven by the same workload agree on
    /// every observation: each pop returns the same `(time, payload)`,
    /// and `peek_time`/`len` match after every step.
    #[test]
    fn calendar_pops_bit_identical_to_heap(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..300),
    ) {
        let ops: Vec<Op> = raw.iter().map(|&w| decode(w)).collect();
        let mut heap = AnyEventQueue::new(QueueKind::BinaryHeap);
        let mut cal = AnyEventQueue::new(QueueKind::Calendar);
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&mut heap, op, i as u32);
            let b = apply(&mut cal, op, i as u32);
            prop_assert_eq!(a, b, "divergence at op {}: {:?}", i, op);
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain whatever remains: the tails must be identical and sorted
        // by the packed key (time ascending, insertion order within a
        // timestamp).
        let mut last: Option<(SimTime, u32)> = None;
        while let Some(a) = heap.pop() {
            prop_assert_eq!(Some(a), cal.pop());
            if let Some((lt, lp)) = last {
                prop_assert!(a.0 > lt || (a.0 == lt && a.1 > lp), "total order violated");
            }
            last = Some(a);
        }
        prop_assert!(cal.pop().is_none());
    }

    /// Checkpointing mid-workload and restoring into the *other* queue
    /// kind leaves the remaining pop sequence unchanged: snapshots
    /// written under one kind resume under the other bit-identically.
    #[test]
    fn checkpoint_crosses_queue_kinds(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..300),
        cut in 0usize..300,
    ) {
        let ops: Vec<Op> = raw.iter().map(|&w| decode(w)).collect();
        let mut reference = AnyEventQueue::new(QueueKind::BinaryHeap);
        let mut swapped = AnyEventQueue::new(QueueKind::Calendar);
        let cut = cut.min(ops.len());
        for (i, op) in ops.iter().enumerate() {
            if i == cut {
                // Migrate each queue onto the opposite kind through the
                // shared checkpoint format.
                let (records, seq) = swapped.checkpoint_events();
                swapped = AnyEventQueue::from_events(QueueKind::BinaryHeap, records, seq);
                prop_assert_eq!(swapped.kind(), QueueKind::BinaryHeap);
                let (records, seq) = reference.checkpoint_events();
                reference = AnyEventQueue::from_events(QueueKind::Calendar, records, seq);
            }
            let a = apply(&mut reference, op, i as u32);
            let b = apply(&mut swapped, op, i as u32);
            prop_assert_eq!(a, b, "divergence at op {} after kind swap", i);
        }
        while let Some(a) = reference.pop() {
            prop_assert_eq!(Some(a), swapped.pop());
        }
        prop_assert!(swapped.pop().is_none());
    }

    /// Day-width auto-tuning is invisible to the ordering contract: an
    /// auto-tuned calendar queue and one pinned to an arbitrary fixed
    /// day width (the escape hatch) pop the identical `(time, seq)`
    /// sequence under any workload — long enough runs here that the gap
    /// histogram crosses its sample threshold and re-tunes for real.
    #[test]
    fn tuned_and_fixed_width_calendars_pop_identically(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..600),
        width_pow in 0u32..16,
    ) {
        let ops: Vec<Op> = raw.iter().map(|&w| decode(w)).collect();
        let mut tuned: CalendarQueue<u32> = CalendarQueue::new();
        let mut fixed: CalendarQueue<u32> = CalendarQueue::with_fixed_day_width_ms(1u64 << width_pow);
        for (i, op) in ops.iter().enumerate() {
            let (a, b) = match op {
                Op::Schedule(ms) => {
                    tuned.schedule(SimTime::from_millis(*ms), i as u32);
                    fixed.schedule(SimTime::from_millis(*ms), i as u32);
                    (None, None)
                }
                Op::Pop => (tuned.pop(), fixed.pop()),
            };
            prop_assert_eq!(a, b, "divergence at op {}: {:?}", i, op);
            prop_assert_eq!(tuned.peek_time(), fixed.peek_time());
            prop_assert_eq!(tuned.len(), fixed.len());
        }
        while let Some(a) = tuned.pop() {
            prop_assert_eq!(Some(a), fixed.pop());
        }
        prop_assert!(fixed.pop().is_none());
    }
}
