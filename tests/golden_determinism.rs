//! Golden determinism fixtures.
//!
//! These fingerprints were recorded from the engine *before* the dense
//! hot-path refactor (slab storage, incremental grid, scratch buffers)
//! and pin the simulation down bit-for-bit: every counter is compared
//! exactly and every floating-point statistic is compared by its IEEE-754
//! bit pattern. Any change to RNG draw order, event ordering, or float
//! evaluation order fails these tests.
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```text
//! cargo test --test golden_determinism -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `FIXTURES`.

use mlora::core::Scheme;
use mlora::sim::{Environment, SimConfig, SimReport};

/// The seed every fixture run uses.
const GOLDEN_SEED: u64 = 4242;

/// Width of one fingerprint: 11 exact counters, 6 float bit patterns and
/// a bucket-weighted series checksum.
const FP_LEN: usize = 18;

/// The fixture scenarios: all four schemes × both environments.
fn scenarios() -> Vec<(Scheme, Environment)> {
    let mut out = Vec::new();
    for scheme in Scheme::WITH_CA_ETX {
        for env in [Environment::Urban, Environment::Rural] {
            out.push((scheme, env));
        }
    }
    out
}

/// A bit-exact digest of everything a [`SimReport`] contains.
fn fingerprint(r: &SimReport) -> [u64; FP_LEN] {
    // Position-weighted checksum so a permutation of bucket counts cannot
    // cancel out.
    let series: u64 = r
        .throughput_series
        .counts()
        .iter()
        .enumerate()
        .map(|(i, &c)| c.wrapping_mul(i as u64 + 1))
        .fold(0, u64::wrapping_add);
    [
        r.generated,
        r.delivered,
        r.duplicates,
        r.stranded,
        r.queue_drops,
        r.frames_sent,
        r.messages_sent,
        r.handover_frames,
        r.handover_messages,
        r.collisions,
        r.devices_seen,
        r.mean_delay_s().to_bits(),
        r.delay_std_error_s().to_bits(),
        r.mean_hops().to_bits(),
        r.max_hops().to_bits(),
        r.total_energy_mj.to_bits(),
        r.total_active_s.to_bits(),
        series,
    ]
}

fn run(scheme: Scheme, env: Environment) -> SimReport {
    SimConfig::smoke_test(scheme, env)
        .run(GOLDEN_SEED)
        .expect("smoke config is valid")
}

/// Recorded on the pre-refactor engine (seed 4242, smoke scale).
const FIXTURES: [[u64; FP_LEN]; 8] = [
    // NoRouting / Urban
    [
        297,
        232,
        0,
        65,
        0,
        1625,
        4285,
        0,
        0,
        0,
        28,
        4642453487001557604,
        4625946806998997411,
        4607182418800017408,
        4607182418800017408,
        4701912839961370533,
        4677510462630633931,
        1626,
    ],
    // NoRouting / Rural
    [
        299,
        236,
        0,
        63,
        0,
        1633,
        4324,
        0,
        0,
        2,
        28,
        4642668370156137099,
        4626021376476001841,
        4607182418800017408,
        4607182418800017408,
        4701913996425123646,
        4677510462630633931,
        1661,
    ],
    // CaEtx / Urban
    [
        295,
        250,
        0,
        45,
        0,
        1548,
        4076,
        16,
        28,
        0,
        28,
        4643475978852268532,
        4626542757275065566,
        4607668807559773423,
        4611686018427387904,
        4701905349352004727,
        4677510462630633931,
        1748,
    ],
    // CaEtx / Rural
    [
        293,
        237,
        2,
        56,
        0,
        1460,
        3938,
        37,
        66,
        0,
        28,
        4643312304008738346,
        4626783881861341023,
        4607847507352582675,
        4613937818241073152,
        4701899064189635055,
        4677510462630633931,
        1656,
    ],
    // RcaEtx / Urban
    [
        296,
        250,
        0,
        46,
        0,
        1566,
        4139,
        18,
        35,
        0,
        28,
        4643641591058371973,
        4626668481929480468,
        4607812922747849281,
        4613937818241073152,
        4701907381391226778,
        4677510462630633931,
        1751,
    ],
    // RcaEtx / Rural
    [
        293,
        255,
        0,
        38,
        0,
        1470,
        3821,
        42,
        91,
        0,
        28,
        4644206739138192291,
        4627207192997398038,
        4608736602200835462,
        4613937818241073152,
        4701896823971630181,
        4677510462630633931,
        1800,
    ],
    // Robc / Urban
    [
        290,
        245,
        0,
        45,
        0,
        1604,
        4140,
        15,
        28,
        0,
        28,
        4643595152282724534,
        4626683479658253214,
        4607641969782402152,
        4616189618054758400,
        4701908811854995521,
        4677510462630633931,
        1714,
    ],
    // Robc / Rural
    [
        295,
        246,
        0,
        49,
        0,
        1622,
        4322,
        39,
        56,
        1,
        28,
        4643747482931489248,
        4627032426575528336,
        4608116091893496657,
        4616189618054758400,
        4701913621397169295,
        4677510462630633931,
        1713,
    ],
];

#[test]
fn engine_reproduces_golden_fixtures() {
    for ((scheme, env), want) in scenarios().into_iter().zip(FIXTURES) {
        let got = fingerprint(&run(scheme, env));
        assert_eq!(
            got, want,
            "fingerprint drift for {scheme:?}/{env:?} at seed {GOLDEN_SEED}"
        );
    }
}

/// Regeneration helper: prints the `FIXTURES` table for pasting.
#[test]
#[ignore = "generator: prints the fixture table"]
fn print_golden_fixtures() {
    println!("const FIXTURES: [[u64; FP_LEN]; 8] = [");
    for (scheme, env) in scenarios() {
        let fp = fingerprint(&run(scheme, env));
        let row: Vec<String> = fp.iter().map(|v| format!("{v}")).collect();
        println!("    // {scheme:?} / {env:?}");
        println!("    [{}],", row.join(", "));
    }
    println!("];");
}
