//! Golden determinism fixtures.
//!
//! These fingerprints were recorded from the engine *before* the dense
//! hot-path refactor (slab storage, incremental grid, scratch buffers)
//! and pin the simulation down bit-for-bit: every counter is compared
//! exactly and every floating-point statistic is compared by its IEEE-754
//! bit pattern. Any change to RNG draw order, event ordering, or float
//! evaluation order fails these tests.
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```text
//! cargo test --test golden_determinism -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `FIXTURES`.

use mlora::core::Scheme;
use mlora::geo::Point;
use mlora::sim::{
    ArrivalProcess, DisruptionPlan, Environment, ExperimentPlan, PayloadModel, QueueKind, Runner,
    Scenario, SimConfig, SimReport, TrafficModel, TrafficProfile,
};
use mlora::simcore::SimDuration;

/// The seed every fixture run uses.
const GOLDEN_SEED: u64 = 4242;

/// Width of one fingerprint: 11 exact counters, 6 float bit patterns and
/// a bucket-weighted series checksum.
const FP_LEN: usize = 18;

/// The fixture scenarios: all four schemes × both environments.
fn scenarios() -> Vec<(Scheme, Environment)> {
    let mut out = Vec::new();
    for scheme in Scheme::WITH_CA_ETX {
        for env in [Environment::Urban, Environment::Rural] {
            out.push((scheme, env));
        }
    }
    out
}

/// A bit-exact digest of everything a [`SimReport`] contains.
fn fingerprint(r: &SimReport) -> [u64; FP_LEN] {
    // Position-weighted checksum so a permutation of bucket counts cannot
    // cancel out.
    let series: u64 = r
        .throughput_series
        .counts()
        .iter()
        .enumerate()
        .map(|(i, &c)| c.wrapping_mul(i as u64 + 1))
        .fold(0, u64::wrapping_add);
    [
        r.generated,
        r.delivered,
        r.duplicates,
        r.stranded,
        r.queue_drops,
        r.frames_sent,
        r.messages_sent,
        r.handover_frames,
        r.handover_messages,
        r.collisions,
        r.devices_seen,
        r.mean_delay_s().to_bits(),
        r.delay_std_error_s().to_bits(),
        r.mean_hops().to_bits(),
        r.max_hops().to_bits(),
        r.total_energy_mj.to_bits(),
        r.total_active_s.to_bits(),
        series,
    ]
}

fn run(scheme: Scheme, env: Environment) -> SimReport {
    SimConfig::smoke_test(scheme, env)
        .run(GOLDEN_SEED)
        .expect("smoke config is valid")
}

/// Recorded on the pre-refactor engine (seed 4242, smoke scale).
const FIXTURES: [[u64; FP_LEN]; 8] = [
    // NoRouting / Urban
    [
        297,
        232,
        0,
        65,
        0,
        1625,
        4285,
        0,
        0,
        0,
        28,
        4642453487001557604,
        4625946806998997411,
        4607182418800017408,
        4607182418800017408,
        4701912839961370533,
        4677510462630633931,
        1626,
    ],
    // NoRouting / Rural
    [
        299,
        236,
        0,
        63,
        0,
        1633,
        4324,
        0,
        0,
        2,
        28,
        4642668370156137099,
        4626021376476001841,
        4607182418800017408,
        4607182418800017408,
        4701913996425123646,
        4677510462630633931,
        1661,
    ],
    // CaEtx / Urban
    [
        295,
        250,
        0,
        45,
        0,
        1548,
        4076,
        16,
        28,
        0,
        28,
        4643475978852268532,
        4626542757275065566,
        4607668807559773423,
        4611686018427387904,
        4701905349352004727,
        4677510462630633931,
        1748,
    ],
    // CaEtx / Rural
    [
        293,
        237,
        2,
        56,
        0,
        1460,
        3938,
        37,
        66,
        0,
        28,
        4643312304008738346,
        4626783881861341023,
        4607847507352582675,
        4613937818241073152,
        4701899064189635055,
        4677510462630633931,
        1656,
    ],
    // RcaEtx / Urban
    [
        296,
        250,
        0,
        46,
        0,
        1566,
        4139,
        18,
        35,
        0,
        28,
        4643641591058371973,
        4626668481929480468,
        4607812922747849281,
        4613937818241073152,
        4701907381391226778,
        4677510462630633931,
        1751,
    ],
    // RcaEtx / Rural
    [
        293,
        255,
        0,
        38,
        0,
        1470,
        3821,
        42,
        91,
        0,
        28,
        4644206739138192291,
        4627207192997398038,
        4608736602200835462,
        4613937818241073152,
        4701896823971630181,
        4677510462630633931,
        1800,
    ],
    // Robc / Urban
    [
        290,
        245,
        0,
        45,
        0,
        1604,
        4140,
        15,
        28,
        0,
        28,
        4643595152282724534,
        4626683479658253214,
        4607641969782402152,
        4616189618054758400,
        4701908811854995521,
        4677510462630633931,
        1714,
    ],
    // Robc / Rural
    [
        295,
        246,
        0,
        49,
        0,
        1622,
        4322,
        39,
        56,
        1,
        28,
        4643747482931489248,
        4627032426575528336,
        4608116091893496657,
        4616189618054758400,
        4701913621397169295,
        4677510462630633931,
        1713,
    ],
];

#[test]
fn engine_reproduces_golden_fixtures() {
    for ((scheme, env), want) in scenarios().into_iter().zip(FIXTURES) {
        let got = fingerprint(&run(scheme, env));
        assert_eq!(
            got, want,
            "fingerprint drift for {scheme:?}/{env:?} at seed {GOLDEN_SEED}"
        );
    }
}

/// The spatially partitioned parallel engine must reproduce the serial
/// fixtures bit for bit at every shard count: sharding moves the
/// draw-free spatial queries onto worker threads but replays every RNG
/// draw, filter and mutation in the serial order.
#[test]
fn sharded_engine_reproduces_golden_fixtures() {
    for shards in [2, 4] {
        for ((scheme, env), want) in scenarios().into_iter().zip(FIXTURES) {
            let mut cfg = SimConfig::smoke_test(scheme, env);
            cfg.shards = shards;
            let got = fingerprint(&cfg.run(GOLDEN_SEED).expect("sharded smoke config is valid"));
            assert_eq!(
                got, want,
                "sharded ({shards}) fingerprint drift for {scheme:?}/{env:?} at seed {GOLDEN_SEED}"
            );
        }
    }
}

/// The calendar event queue must reproduce the binary-heap fixtures bit
/// for bit, serially and under sharding: both queue kinds pop in the
/// packed `(time, seq)` total order, so the queue is pure mechanics with
/// no fingerprint of its own.
#[test]
fn calendar_queue_reproduces_golden_fixtures() {
    for shards in [1, 2, 4] {
        for ((scheme, env), want) in scenarios().into_iter().zip(FIXTURES) {
            let mut cfg = SimConfig::smoke_test(scheme, env);
            cfg.shards = shards;
            cfg.queue = QueueKind::Calendar;
            let got = fingerprint(
                &cfg.run(GOLDEN_SEED)
                    .expect("calendar smoke config is valid"),
            );
            assert_eq!(
                got, want,
                "calendar-queue ({shards} shard) fingerprint drift for {scheme:?}/{env:?} \
                 at seed {GOLDEN_SEED}"
            );
        }
    }
}

/// An explicitly attached empty [`DisruptionPlan`] must reproduce the
/// recorded pre-subsystem fingerprints byte-for-byte: the disruption
/// machinery costs nothing — no events, no RNG draws — until a plan
/// actually schedules something.
#[test]
fn empty_disruption_plan_reproduces_golden_fixtures() {
    for ((scheme, env), want) in scenarios().into_iter().zip(FIXTURES) {
        let report = Scenario::custom(env)
            .scheme(scheme)
            .smoke()
            .disruptions(DisruptionPlan::default())
            .run(GOLDEN_SEED)
            .expect("smoke config with empty plan is valid");
        let got = fingerprint(&report);
        assert_eq!(
            got, want,
            "empty DisruptionPlan perturbed {scheme:?}/{env:?} at seed {GOLDEN_SEED}"
        );
        let r = report;
        assert_eq!(r.gateway_outages, 0);
        assert_eq!(r.buses_withdrawn, 0);
        assert_eq!(r.noise_bursts, 0);
        assert_eq!(r.outage_time_s.to_bits(), 0.0f64.to_bits());
    }
}

/// An explicitly attached empty [`TrafficModel`] must reproduce the
/// recorded pre-subsystem fingerprints byte-for-byte: the traffic
/// machinery costs nothing — no per-device streams, no extra draws —
/// until a profile is actually mixed in.
#[test]
fn empty_traffic_model_reproduces_golden_fixtures() {
    for ((scheme, env), want) in scenarios().into_iter().zip(FIXTURES) {
        let report = Scenario::custom(env)
            .scheme(scheme)
            .smoke()
            .traffic(TrafficModel::default())
            .run(GOLDEN_SEED)
            .expect("smoke config with empty traffic model is valid");
        let got = fingerprint(&report);
        assert_eq!(
            got, want,
            "empty TrafficModel perturbed {scheme:?}/{env:?} at seed {GOLDEN_SEED}"
        );
        assert!(report.profiles.is_empty());
        assert!(report.total_airtime_s > 0.0);
    }
}

/// The disrupted fixture scenario: smoke-scale urban ROBC with one
/// outage window, one fleet withdrawal and one regional noise burst.
fn disrupted_config() -> SimConfig {
    Scenario::urban()
        .scheme(Scheme::Robc)
        .smoke()
        .gateway_outage(4, SimDuration::from_mins(30), SimDuration::from_mins(30))
        .withdraw_buses(SimDuration::from_mins(45), 0.25)
        .noise_burst(
            Point::new(5_000.0, 5_000.0),
            3_000.0,
            SimDuration::from_mins(20),
            SimDuration::from_mins(40),
            12.0,
        )
        .build()
        .expect("disrupted smoke config is valid")
}

/// Width of a disrupted fingerprint: the base fingerprint plus the six
/// resilience counters.
const DFP_LEN: usize = FP_LEN + 6;

/// Fingerprint of a disrupted run: everything in [`fingerprint`] plus
/// the resilience counters (outage/withdrawal/noise counts exact,
/// disrupted time by bit pattern).
fn disrupted_fingerprint(r: &SimReport) -> [u64; DFP_LEN] {
    let mut out = [0u64; DFP_LEN];
    out[..FP_LEN].copy_from_slice(&fingerprint(r));
    out[FP_LEN] = r.gateway_outages;
    out[FP_LEN + 1] = r.buses_withdrawn;
    out[FP_LEN + 2] = r.noise_bursts;
    out[FP_LEN + 3] = r.outage_time_s.to_bits();
    out[FP_LEN + 4] = r.generated_during_outage;
    out[FP_LEN + 5] = r.delivered_of_outage_generated;
    out
}

/// Recorded on the engine that introduced the disruption subsystem
/// (seed 4242, smoke scale, urban ROBC, one outage + one withdrawal +
/// one noise burst).
const DISRUPTED_FIXTURE: [u64; DFP_LEN] = [
    267,
    195,
    0,
    72,
    0,
    1556,
    4498,
    13,
    38,
    0,
    28,
    4644446686175652332,
    4628748073743616730,
    4607505754157879903,
    4613937818241073152,
    4701260744004337874,
    4676854739459473671,
    1429,
    1,
    2,
    1,
    4655631299166339072,
    86,
    60,
];

#[test]
fn disrupted_run_matches_golden_fixture() {
    let report = disrupted_config()
        .run(GOLDEN_SEED)
        .expect("valid disrupted config");
    assert_eq!(
        disrupted_fingerprint(&report),
        DISRUPTED_FIXTURE,
        "fingerprint drift for the disrupted fixture at seed {GOLDEN_SEED}"
    );
    // The fixture genuinely exercises every disruption kind.
    assert_eq!(report.gateway_outages, 1);
    assert_eq!(report.noise_bursts, 1);
    assert!(report.buses_withdrawn > 0, "withdrawal selected no buses");
    assert_eq!(report.outage_time_s, 1_800.0);
    assert!(report.generated_during_outage > 0);
}

/// Disrupted runs must stay bit-identical across `Runner` worker
/// counts, exactly like undisrupted ones.
#[test]
fn disrupted_runs_deterministic_across_worker_counts() {
    let plan = ExperimentPlan::new(disrupted_config())
        .schemes([Scheme::Robc, Scheme::RcaEtx])
        .fixed_seeds([GOLDEN_SEED, GOLDEN_SEED + 1]);
    let serial = Runner::single_threaded().run(&plan).expect("valid plan");
    let parallel = Runner::new().workers(4).run(&plan).expect("valid plan");
    assert_eq!(serial, parallel);
    // And the runner reproduces a direct engine run of the same cell.
    let direct = disrupted_config().run(GOLDEN_SEED).unwrap();
    assert_eq!(
        *serial[0].report.runs()[0].1.throughput_series.counts(),
        *direct.throughput_series.counts()
    );
    assert_eq!(serial[0].report.runs()[0].1, direct);
}

/// Sharded runs of the disrupted fixture — outages, withdrawals and
/// regional noise exercise every worker-invisible state the commit
/// thread must filter for — stay bit-identical to the serial engine.
#[test]
fn sharded_disrupted_run_matches_golden_fixture() {
    for shards in [2, 4] {
        let mut cfg = disrupted_config();
        cfg.shards = shards;
        let report = cfg.run(GOLDEN_SEED).expect("valid disrupted config");
        assert_eq!(
            disrupted_fingerprint(&report),
            DISRUPTED_FIXTURE,
            "sharded ({shards}) fingerprint drift for the disrupted fixture"
        );
    }
}

/// The calendar queue reproduces the disrupted fixture too — timed
/// disruption events interleave with the simulation's own at identical
/// keys, so bucket rotation must preserve their relative order.
#[test]
fn calendar_disrupted_run_matches_golden_fixture() {
    let mut cfg = disrupted_config();
    cfg.queue = QueueKind::Calendar;
    let report = cfg.run(GOLDEN_SEED).expect("valid disrupted config");
    assert_eq!(
        disrupted_fingerprint(&report),
        DISRUPTED_FIXTURE,
        "calendar-queue fingerprint drift for the disrupted fixture"
    );
}

/// Regeneration helper: prints the `DISRUPTED_FIXTURE` row for pasting.
#[test]
#[ignore = "generator: prints the disrupted fixture row"]
fn print_disrupted_fixture() {
    let report = disrupted_config().run(GOLDEN_SEED).unwrap();
    let row: Vec<String> = disrupted_fingerprint(&report)
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    println!("const DISRUPTED_FIXTURE: [u64; DFP_LEN] = [");
    println!("    {},", row.join(", "));
    println!("];");
}

/// The mixed-traffic fixture scenario: smoke-scale urban ROBC with all
/// four non-trivial arrival processes in one weighted mix — jittered
/// telemetry, Poisson tracking with variable payloads, diurnal
/// passenger counts and bursty high-priority alerts.
fn traffic_config() -> SimConfig {
    Scenario::urban()
        .scheme(Scheme::Robc)
        .smoke()
        .profile(TrafficProfile::telemetry().weight(4.0))
        .profile(TrafficProfile::tracking().weight(2.0))
        .profile(TrafficProfile::passenger_counts().weight(1.0))
        .profile(TrafficProfile::alerts().weight(0.5))
        .build()
        .expect("mixed traffic smoke config is valid")
}

/// Number of profiles in the mixed-traffic fixture.
const TRAFFIC_PROFILES: usize = 4;

/// Width of a traffic fingerprint: the base fingerprint, the total
/// airtime bit pattern, and five entries per profile (generated and
/// delivered exact; delay mean, attributed airtime by bit pattern;
/// payload bytes exact).
const TFP_LEN: usize = FP_LEN + 1 + TRAFFIC_PROFILES * 5;

/// Fingerprint of a mixed-traffic run: everything in [`fingerprint`]
/// plus the per-profile breakdown.
fn traffic_fingerprint(r: &SimReport) -> [u64; TFP_LEN] {
    assert_eq!(r.profiles.len(), TRAFFIC_PROFILES);
    let mut out = [0u64; TFP_LEN];
    out[..FP_LEN].copy_from_slice(&fingerprint(r));
    out[FP_LEN] = r.total_airtime_s.to_bits();
    for (i, p) in r.profiles.iter().enumerate() {
        let base = FP_LEN + 1 + i * 5;
        out[base] = p.generated;
        out[base + 1] = p.delivered;
        out[base + 2] = p.mean_delay_s().to_bits();
        out[base + 3] = p.airtime_s.to_bits();
        out[base + 4] = p.payload_bytes_sent;
    }
    out
}

/// Recorded on the engine that introduced the traffic subsystem
/// (seed 4242, smoke scale, urban ROBC, telemetry + tracking +
/// passenger-counts + alerts mix).
const TRAFFIC_FIXTURE: [u64; TFP_LEN] = [
    324,
    273,
    0,
    51,
    0,
    1427,
    3980,
    7,
    9,
    0,
    28,
    4643416157246890518,
    4626228250559186074,
    4607330889117403243,
    4611686018427387904,
    4701897153843157375,
    4677510462630633931,
    1927,
    4640626008895382347,
    // telemetry
    206,
    177,
    4641953761544898612,
    4636336458377984093,
    51080,
    // tracking
    93,
    86,
    4645395291648644401,
    4631132839978073852,
    25013,
    // passenger-counts
    3,
    1,
    4590573143374275019,
    4605902010782881918,
    408,
    // alerts
    22,
    9,
    4639634626661784691,
    4614393410747266024,
    1640,
];

#[test]
fn mixed_traffic_run_matches_golden_fixture() {
    let report = traffic_config()
        .run(GOLDEN_SEED)
        .expect("valid traffic config");
    assert_eq!(
        traffic_fingerprint(&report),
        TRAFFIC_FIXTURE,
        "fingerprint drift for the mixed-traffic fixture at seed {GOLDEN_SEED}"
    );
    // The fixture genuinely exercises every profile and both payload
    // regimes.
    for p in &report.profiles {
        assert!(p.generated > 0, "profile {} generated nothing", p.name);
    }
    let tracking = report.profile("tracking").expect("tracking profile");
    assert!(tracking.delivered > 0);
    // Variable 12–32-byte fixes average away from any fixed size.
    assert!(tracking.mean_payload_bytes() > 12.0);
    assert!(tracking.mean_payload_bytes() < 32.0);
    // Attributed airtime never exceeds the fleet total.
    let attributed: f64 = report.profiles.iter().map(|p| p.airtime_s).sum();
    assert!(attributed > 0.0 && attributed < report.total_airtime_s);
}

/// Mixed-traffic runs must stay bit-identical across `Runner` worker
/// counts, exactly like homogeneous ones.
#[test]
fn mixed_traffic_runs_deterministic_across_worker_counts() {
    let plan = ExperimentPlan::new(traffic_config())
        .schemes([Scheme::Robc, Scheme::NoRouting])
        .traffics([
            traffic_config().traffic,
            TrafficModel::mix([TrafficProfile::new(
                "steady",
                ArrivalProcess::Periodic {
                    interval: SimDuration::from_mins(2),
                },
                PayloadModel::Fixed { bytes: 40 },
            )]),
        ])
        .fixed_seeds([GOLDEN_SEED, GOLDEN_SEED + 1]);
    let serial = Runner::single_threaded().run(&plan).expect("valid plan");
    let parallel = Runner::new().workers(4).run(&plan).expect("valid plan");
    assert_eq!(serial, parallel);
    // And the runner reproduces a direct engine run of the same cell.
    let direct = traffic_config().run(GOLDEN_SEED).unwrap();
    assert_eq!(serial[0].report.runs()[0].1, direct);
}

/// Sharded runs of the mixed-traffic fixture stay bit-identical to the
/// serial engine, and a sharded cell inside a multi-worker `Runner`
/// plan divides the thread budget without perturbing results.
#[test]
fn sharded_mixed_traffic_matches_fixture_and_runner_stays_deterministic() {
    for shards in [2, 4] {
        let mut cfg = traffic_config();
        cfg.shards = shards;
        let report = cfg.run(GOLDEN_SEED).expect("valid traffic config");
        assert_eq!(
            traffic_fingerprint(&report),
            TRAFFIC_FIXTURE,
            "sharded ({shards}) fingerprint drift for the mixed-traffic fixture"
        );
    }
    // Plan-level × intra-run parallelism: same results as a serial
    // runner over serial cells.
    let mut sharded_cfg = traffic_config();
    sharded_cfg.shards = 2;
    let plan = ExperimentPlan::new(sharded_cfg)
        .schemes([Scheme::Robc, Scheme::NoRouting])
        .fixed_seeds([GOLDEN_SEED, GOLDEN_SEED + 1]);
    let serial_plan = ExperimentPlan::new(traffic_config())
        .schemes([Scheme::Robc, Scheme::NoRouting])
        .fixed_seeds([GOLDEN_SEED, GOLDEN_SEED + 1]);
    let sharded = Runner::new().workers(4).run(&plan).expect("valid plan");
    let serial = Runner::single_threaded()
        .run(&serial_plan)
        .expect("valid plan");
    for (a, b) in sharded.iter().zip(&serial) {
        assert_eq!(a.report.runs(), b.report.runs());
    }
}

/// The calendar queue reproduces the mixed-traffic fixture — jittered,
/// Poisson and bursty arrivals give the densest, most irregular event
/// timeline any fixture produces.
#[test]
fn calendar_mixed_traffic_matches_golden_fixture() {
    let mut cfg = traffic_config();
    cfg.queue = QueueKind::Calendar;
    let report = cfg.run(GOLDEN_SEED).expect("valid traffic config");
    assert_eq!(
        traffic_fingerprint(&report),
        TRAFFIC_FIXTURE,
        "calendar-queue fingerprint drift for the mixed-traffic fixture"
    );
}

/// Regeneration helper: prints the `TRAFFIC_FIXTURE` row for pasting.
#[test]
#[ignore = "generator: prints the mixed-traffic fixture row"]
fn print_traffic_fixture() {
    let report = traffic_config().run(GOLDEN_SEED).unwrap();
    let row: Vec<String> = traffic_fingerprint(&report)
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    println!("const TRAFFIC_FIXTURE: [u64; TFP_LEN] = [");
    println!("    {},", row.join(", "));
    println!("];");
}

/// Regeneration helper: prints the `FIXTURES` table for pasting.
#[test]
#[ignore = "generator: prints the fixture table"]
fn print_golden_fixtures() {
    println!("const FIXTURES: [[u64; FP_LEN]; 8] = [");
    for (scheme, env) in scenarios() {
        let fp = fingerprint(&run(scheme, env));
        let row: Vec<String> = fp.iter().map(|v| format!("{v}")).collect();
        println!("    // {scheme:?} / {env:?}");
        println!("    [{}],", row.join(", "));
    }
    println!("];");
}
