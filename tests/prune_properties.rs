//! Lazy-vs-eager flight pruning bit-equality: the deferred
//! growth-boundary sweep the channel runs by default and the historical
//! per-transmission-end eager sweep must produce byte-identical reports
//! over arbitrary traffic mixes and disruption plans. The lazy sweep is
//! safe because a stale flight (`end + retention < now`) can never pass
//! the time-overlap filter of any frame still in the air — any
//! divergence here means a stale flight leaked into an interferer set
//! (or slab slot reuse bled into an RNG draw order).

use mlora::geo::Point;
use mlora::sim::probe;
use mlora::sim::{
    ArrivalProcess, BusWithdrawal, DisruptionPlan, Engine, GatewayOutage, NoiseBurst, PayloadModel,
    Scenario, TrafficModel, TrafficProfile,
};
use mlora::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// Gateways deployed by the smoke preset's 3×3 grid. An `outage_gw`
/// draw of exactly `GATEWAYS` means "no outage".
const GATEWAYS: usize = 9;

proptest! {
    /// A default (lazily pruned) run and an eagerly pruned run of the
    /// same scenario report identically, field for field — counters,
    /// float accumulators, per-profile rows and time series.
    #[test]
    fn lazy_and_eager_pruning_report_identically(
        seed in 0u64..1_000_000,
        interval_s in 30u64..600,
        jitter in 0.0f64..0.45,
        payload in 12usize..64,
        duration_min in 15u64..30,
        outage_gw in 0usize..GATEWAYS + 1,
        outage_start in 0u64..1_200,
        outage_dur in 0u64..1_000,
        withdraw_at in 0u64..1_200,
        withdraw_frac in 0.0f64..0.6,
        burst_start in 0u64..1_200,
        burst_dur in 0u64..900,
    ) {
        let interval = SimDuration::from_secs(interval_s);
        // Sub-threshold draws decode to "feature absent", so the mix
        // covers plain periodic traffic and disruption-free runs too.
        let arrivals = if jitter < 0.05 {
            ArrivalProcess::Periodic { interval }
        } else {
            ArrivalProcess::Jittered { interval, jitter }
        };
        let traffic = TrafficModel::mix([TrafficProfile::new(
            "prune-prop",
            arrivals,
            PayloadModel::Fixed { bytes: payload },
        )]);
        let plan = DisruptionPlan {
            outages: (outage_gw < GATEWAYS)
                .then(|| GatewayOutage {
                    gateway: outage_gw,
                    start: SimTime::from_secs(outage_start),
                    duration: (outage_dur > 0).then(|| SimDuration::from_secs(outage_dur)),
                })
                .into_iter()
                .collect(),
            withdrawals: (withdraw_frac >= 0.05)
                .then(|| BusWithdrawal {
                    at: SimTime::from_secs(withdraw_at),
                    fraction: withdraw_frac,
                })
                .into_iter()
                .collect(),
            noise_bursts: (burst_dur > 0)
                .then(|| NoiseBurst {
                    center: Point::new(5_000.0, 5_000.0),
                    radius_m: 4_000.0,
                    start: SimTime::from_secs(burst_start),
                    duration: Some(SimDuration::from_secs(burst_dur)),
                    extra_loss_db: 10.0,
                })
                .into_iter()
                .collect(),
        };
        let config = Scenario::urban()
            .smoke()
            .duration(SimDuration::from_mins(duration_min))
            .traffic(traffic)
            .disruptions(plan)
            .build()
            .expect("generated scenario is valid");

        let lazy = Engine::new(config.clone(), seed).run();
        let mut engine = Engine::new(config, seed);
        probe::set_eager_flight_prune(&mut engine, true);
        let eager = engine.run();

        prop_assert_eq!(lazy, eager, "lazy and eager pruning diverged");
    }
}
